//! Comparing two `BENCH_*.json` documents for performance regressions.
//!
//! Every bench binary mirrors its tables into JSON with `--json`, and
//! each of those documents carries one or more `events_per_sec` leaves
//! — the workspace's common currency for event-loop throughput. This
//! module aligns those leaves between a *baseline* and a *candidate*
//! document and flags every leaf whose throughput dropped by more than
//! a configurable fraction. The `bench-diff` binary wraps it as the CI
//! regression gate.
//!
//! Two modes, picked automatically:
//!
//! - **Aligned** (both documents carry the same `"bench"` name): every
//!   `events_per_sec` leaf in the baseline must exist at the same
//!   path in the candidate — combos/scenarios/cells are matched by
//!   their identity keys, not array position — and each pair is
//!   compared. A baseline path missing from the candidate is a schema
//!   mismatch, not a pass.
//! - **Headline** (different `"bench"` names, e.g. `queue_smoke` vs
//!   `profile`): the documents measure different things, so only the
//!   headline number — each document's *best* events/sec — is
//!   compared. This is how `BENCH_pr4.json` gates a `profile` report.

use airtime_obs::json::{self, Json, Obj};

/// How two documents were compared.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DiffMode {
    /// Same bench: every baseline leaf matched by path.
    Aligned,
    /// Different benches: best-vs-best only.
    Headline,
}

/// One compared `events_per_sec` pair.
#[derive(Clone, Debug)]
pub struct DiffRow {
    /// Where the leaf lives (e.g. `combos[heap/dense]`).
    pub path: String,
    /// Baseline events/sec.
    pub base: f64,
    /// Candidate events/sec.
    pub cand: f64,
    /// Fractional change, `(cand - base) / base`; negative = slower.
    pub delta: f64,
    /// Whether the drop exceeded the threshold.
    pub regressed: bool,
}

/// The outcome of a comparison.
#[derive(Clone, Debug)]
pub struct Comparison {
    /// Which mode was used.
    pub mode: DiffMode,
    /// Every compared pair, in baseline order.
    pub rows: Vec<DiffRow>,
    /// The regression threshold the rows were judged against.
    pub threshold: f64,
}

impl Comparison {
    /// Whether any row regressed beyond the threshold.
    pub fn regressed(&self) -> bool {
        self.rows.iter().any(|r| r.regressed)
    }
}

/// Renders a comparison as the machine-readable mirror of the
/// `bench-diff` table: one row object per compared leaf plus the
/// overall verdict, so CI tooling can consume deltas without scraping
/// the human output.
pub fn to_json(cmp: &Comparison) -> String {
    let rows: Vec<String> = cmp
        .rows
        .iter()
        .map(|r| {
            Obj::new()
                .str("path", &r.path)
                .f64("base", r.base)
                .f64("cand", r.cand)
                .f64("delta", r.delta)
                .bool("regressed", r.regressed)
                .finish()
        })
        .collect();
    Obj::new()
        .str("bench", "bench_diff")
        .str(
            "mode",
            match cmp.mode {
                DiffMode::Aligned => "aligned",
                DiffMode::Headline => "headline",
            },
        )
        .f64("threshold", cmp.threshold)
        .raw("rows", &format!("[{}]", rows.join(",")))
        .bool("pass", !cmp.regressed())
        .finish()
}

/// Keys that identify an array element for path alignment, tried in
/// order. `combos[{"combo":"heap/dense",...}]` aligns by the combo
/// name, scenarios by scenario name, cells by cell id — never by array
/// position, so reordering a report is not a regression.
const IDENTITY_KEYS: [&str; 5] = ["combo", "label", "scenario", "cell", "phase"];

fn element_identity(v: &Json, index: usize) -> String {
    for k in IDENTITY_KEYS {
        if let Some(id) = v.get(k) {
            match id {
                Json::Str(s) => return s.clone(),
                Json::Num(n) => return format!("{n}"),
                _ => {}
            }
        }
    }
    format!("#{index}")
}

fn collect(v: &Json, path: &str, out: &mut Vec<(String, f64)>) {
    match v {
        Json::Obj(kvs) => {
            for (k, val) in kvs {
                if k == "events_per_sec" {
                    if let Some(n) = val.as_f64() {
                        out.push((path.to_string(), n));
                    }
                    continue;
                }
                let sub = if path.is_empty() {
                    k.clone()
                } else {
                    format!("{path}.{k}")
                };
                collect(val, &sub, out);
            }
        }
        Json::Arr(xs) => {
            for (i, x) in xs.iter().enumerate() {
                let sub = format!("{path}[{}]", element_identity(x, i));
                collect(x, &sub, out);
            }
        }
        _ => {}
    }
}

/// All `events_per_sec` leaves of a document, with alignment paths.
pub fn eps_leaves(doc: &Json) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    collect(doc, "", &mut out);
    out
}

/// Compares two rendered `BENCH_*.json` documents.
///
/// `threshold` is the tolerated fractional drop in events/sec (0.10 =
/// fail when the candidate is more than 10 % slower). Returns `Err`
/// on unparsable input, documents with no `events_per_sec` leaves, or
/// (in aligned mode) baseline paths missing from the candidate —
/// schema drift must fail loudly, not pass silently.
pub fn compare(base_text: &str, cand_text: &str, threshold: f64) -> Result<Comparison, String> {
    if !(0.0..1.0).contains(&threshold) {
        return Err(format!("threshold must be in [0, 1), got {threshold}"));
    }
    let base = json::parse(base_text).map_err(|e| format!("baseline: {e}"))?;
    let cand = json::parse(cand_text).map_err(|e| format!("candidate: {e}"))?;
    let base_leaves = eps_leaves(&base);
    let cand_leaves = eps_leaves(&cand);
    if base_leaves.is_empty() {
        return Err("baseline has no events_per_sec fields".to_string());
    }
    if cand_leaves.is_empty() {
        return Err("candidate has no events_per_sec fields".to_string());
    }
    let bench_of = |d: &Json| d.get("bench").and_then(Json::as_str).map(str::to_string);
    let same_bench = match (bench_of(&base), bench_of(&cand)) {
        (Some(a), Some(b)) => a == b,
        _ => false,
    };

    let judge = |path: String, base: f64, cand: f64| {
        let delta = if base > 0.0 {
            (cand - base) / base
        } else {
            0.0
        };
        DiffRow {
            path,
            base,
            cand,
            delta,
            regressed: delta < -threshold,
        }
    };

    if same_bench {
        let mut rows = Vec::with_capacity(base_leaves.len());
        for (path, b) in &base_leaves {
            let c = cand_leaves
                .iter()
                .find(|(p, _)| p == path)
                .map(|(_, v)| *v)
                .ok_or_else(|| {
                    format!("schema mismatch: baseline path '{path}' missing from candidate")
                })?;
            rows.push(judge(path.clone(), *b, c));
        }
        Ok(Comparison {
            mode: DiffMode::Aligned,
            rows,
            threshold,
        })
    } else {
        // Different benches measure different scenarios; compare each
        // document's best throughput.
        let best = |leaves: &[(String, f64)]| {
            leaves
                .iter()
                .cloned()
                .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
                .expect("non-empty checked above")
        };
        let (bp, bv) = best(&base_leaves);
        let (cp, cv) = best(&cand_leaves);
        Ok(Comparison {
            mode: DiffMode::Headline,
            rows: vec![judge(format!("best[{bp} vs {cp}]"), bv, cv)],
            threshold,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(bench: &str, combos: &[(&str, f64)]) -> String {
        let combos: Vec<String> = combos
            .iter()
            .map(|(name, eps)| format!(r#"{{"combo":"{name}","events_per_sec":{eps}}}"#))
            .collect();
        format!(
            r#"{{"bench":"{bench}","combos":[{}],"pass":true}}"#,
            combos.join(",")
        )
    }

    #[test]
    fn regression_beyond_threshold_is_detected() {
        let base = doc(
            "queue_smoke",
            &[("heap", 3_000_000.0), ("wheel", 2_800_000.0)],
        );
        let cand = doc(
            "queue_smoke",
            &[("heap", 3_100_000.0), ("wheel", 1_000_000.0)],
        );
        let cmp = compare(&base, &cand, 0.25).unwrap();
        assert_eq!(cmp.mode, DiffMode::Aligned);
        assert!(cmp.regressed());
        let wheel = cmp.rows.iter().find(|r| r.path.contains("wheel")).unwrap();
        assert!(wheel.regressed);
        assert!(wheel.delta < -0.6);
        let heap = cmp.rows.iter().find(|r| r.path.contains("[heap]")).unwrap();
        assert!(!heap.regressed);
    }

    #[test]
    fn drop_within_threshold_passes() {
        let base = doc("queue_smoke", &[("heap", 3_000_000.0)]);
        let cand = doc("queue_smoke", &[("heap", 2_700_000.0)]); // -10 %
        let cmp = compare(&base, &cand, 0.25).unwrap();
        assert!(!cmp.regressed());
        assert_eq!(cmp.rows.len(), 1);
        assert!((cmp.rows[0].delta - (-0.1)).abs() < 1e-9);
    }

    #[test]
    fn alignment_is_by_identity_not_position() {
        let base = doc("b", &[("x", 100.0), ("y", 200.0)]);
        let cand = doc("b", &[("y", 200.0), ("x", 100.0)]); // reordered
        let cmp = compare(&base, &cand, 0.05).unwrap();
        assert!(!cmp.regressed());
    }

    #[test]
    fn missing_baseline_path_is_a_schema_error() {
        let base = doc("b", &[("x", 100.0), ("y", 200.0)]);
        let cand = doc("b", &[("x", 100.0)]);
        let err = compare(&base, &cand, 0.25).unwrap_err();
        assert!(err.contains("schema mismatch"), "{err}");
        assert!(err.contains("[y]"), "{err}");
    }

    #[test]
    fn documents_without_events_per_sec_error() {
        let base = doc("b", &[("x", 100.0)]);
        assert!(compare(&base, r#"{"bench":"b","combos":[]}"#, 0.25)
            .unwrap_err()
            .contains("candidate has no events_per_sec"));
        assert!(compare(r#"{"pass":true}"#, &base, 0.25)
            .unwrap_err()
            .contains("baseline has no events_per_sec"));
        assert!(compare("not json", &base, 0.25).is_err());
        assert!(compare(&base, &base, 1.5).is_err());
    }

    #[test]
    fn to_json_mirrors_rows_and_verdict() {
        let base = doc(
            "queue_smoke",
            &[("heap", 3_000_000.0), ("wheel", 2_000_000.0)],
        );
        let cand = doc(
            "queue_smoke",
            &[("heap", 3_000_000.0), ("wheel", 1_000_000.0)],
        );
        let cmp = compare(&base, &cand, 0.25).unwrap();
        let text = to_json(&cmp);
        let parsed = json::parse(&text).expect("to_json output must reparse");
        assert_eq!(
            parsed.get("bench").and_then(Json::as_str),
            Some("bench_diff")
        );
        assert_eq!(parsed.get("mode").and_then(Json::as_str), Some("aligned"));
        assert_eq!(parsed.get("threshold").and_then(Json::as_f64), Some(0.25));
        assert_eq!(parsed.get("pass"), Some(&Json::Bool(false)));
        let Some(Json::Arr(rows)) = parsed.get("rows") else {
            panic!("rows must be an array: {text}");
        };
        assert_eq!(rows.len(), 2);
        let wheel = rows
            .iter()
            .find(|r| r.get("path").and_then(Json::as_str) == Some("combos[wheel]"))
            .unwrap();
        assert_eq!(wheel.get("base").and_then(Json::as_f64), Some(2_000_000.0));
        assert_eq!(wheel.get("cand").and_then(Json::as_f64), Some(1_000_000.0));
        assert_eq!(wheel.get("delta").and_then(Json::as_f64), Some(-0.5));
        assert_eq!(wheel.get("regressed"), Some(&Json::Bool(true)));
    }

    #[test]
    fn to_json_headline_mode_passes_through() {
        let base = doc("queue_smoke", &[("heap", 3_000_000.0)]);
        let cand =
            r#"{"bench":"profile","scenarios":[{"scenario":"fig9","events_per_sec":2900000.0}]}"#;
        let cmp = compare(&base, cand, 0.25).unwrap();
        let text = to_json(&cmp);
        let parsed = json::parse(&text).unwrap();
        assert_eq!(parsed.get("mode").and_then(Json::as_str), Some("headline"));
        assert_eq!(parsed.get("pass"), Some(&Json::Bool(true)));
        let Some(Json::Arr(rows)) = parsed.get("rows") else {
            panic!("rows must be an array: {text}");
        };
        assert_eq!(rows.len(), 1);
    }

    #[test]
    fn different_benches_compare_headline_numbers() {
        let base = doc(
            "queue_smoke",
            &[("heap", 3_000_000.0), ("wheel", 2_500_000.0)],
        );
        let cand =
            r#"{"bench":"profile","scenarios":[{"scenario":"fig9","events_per_sec":2900000.0}]}"#;
        let cmp = compare(&base, cand, 0.25).unwrap();
        assert_eq!(cmp.mode, DiffMode::Headline);
        assert_eq!(cmp.rows.len(), 1);
        assert!(!cmp.regressed()); // 2.9M vs best 3.0M is within 25 %
        let cmp = compare(&base, cand, 0.01).unwrap();
        assert!(cmp.regressed());
    }
}
