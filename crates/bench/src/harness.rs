//! A minimal wall-clock benchmarking harness.
//!
//! The container this workspace builds in has no access to crates.io,
//! so the benches cannot use Criterion. This module provides the small
//! subset actually needed: named groups, auto-calibrated iteration
//! counts, and a mean/min report per benchmark. Usage mirrors the old
//! Criterion code closely enough that the bench files read the same:
//!
//! ```no_run
//! use airtime_bench::harness::Group;
//!
//! let mut g = Group::new("event_queue");
//! g.bench("noop", || {});
//! g.finish();
//! ```

use std::time::{Duration, Instant};

/// Target measurement time per benchmark.
const TARGET: Duration = Duration::from_millis(400);
/// Warm-up time per benchmark.
const WARMUP: Duration = Duration::from_millis(100);

/// A named group of benchmarks, printed as an aligned block.
pub struct Group {
    name: String,
    rows: Vec<(String, Duration, Duration, u64)>,
}

impl Group {
    /// Starts a new group.
    pub fn new(name: &str) -> Self {
        Group {
            name: name.to_string(),
            rows: Vec::new(),
        }
    }

    /// Times `f`, auto-calibrating the iteration count to fill roughly
    /// [`TARGET`] of wall time (minimum 5 iterations).
    pub fn bench<F: FnMut()>(&mut self, name: &str, mut f: F) {
        // Warm up and estimate the per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < WARMUP || warm_iters < 1 {
            f();
            warm_iters += 1;
        }
        let est = warm_start.elapsed() / warm_iters.max(1) as u32;
        let iters = if est.is_zero() {
            10_000
        } else {
            (TARGET.as_nanos() / est.as_nanos().max(1)).clamp(5, 10_000_000) as u64
        };
        let mut min = Duration::MAX;
        let start = Instant::now();
        for _ in 0..iters {
            let t0 = Instant::now();
            f();
            min = min.min(t0.elapsed());
        }
        let total = start.elapsed();
        self.rows
            .push((name.to_string(), total / iters as u32, min, iters));
    }

    /// Prints the group's results.
    pub fn finish(self) {
        println!("{}", self.name);
        let width = self
            .rows
            .iter()
            .map(|(n, ..)| n.len())
            .max()
            .unwrap_or(0)
            .max(4);
        for (name, mean, min, iters) in &self.rows {
            println!(
                "  {name:<width$}  mean {:>12}  min {:>12}  ({iters} iters)",
                fmt_ns(*mean),
                fmt_ns(*min),
            );
        }
        println!();
    }
}

fn fmt_ns(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut g = Group::new("t");
        let mut n = 0u64;
        g.bench("count", || n += 1);
        assert_eq!(g.rows.len(), 1);
        assert!(g.rows[0].3 >= 5);
        g.finish();
        assert!(n > 0);
    }

    #[test]
    fn fmt_ns_scales() {
        assert_eq!(fmt_ns(Duration::from_nanos(5)), "5 ns");
        assert_eq!(fmt_ns(Duration::from_micros(5)), "5.000 µs");
        assert_eq!(fmt_ns(Duration::from_millis(5)), "5.000 ms");
        assert_eq!(fmt_ns(Duration::from_secs(5)), "5.000 s");
    }
}
