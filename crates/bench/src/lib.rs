//! Shared machinery for the reproduction binaries.
//!
//! Every table and figure in the paper's evaluation has a binary in
//! `src/bin/` that reruns the experiment at full length and prints the
//! corresponding rows (`cargo run -p airtime-bench --bin <name>`), next
//! to the paper's published numbers where the paper states them. Every
//! binary also accepts `--json <path>` to mirror its tables into a
//! machine-readable file (see [`output`]). The benches in `benches/`
//! time the same scenario code with the dependency-free [`harness`]
//! module.

pub mod diff;
pub mod harness;
pub mod output;

pub use output::Output;

use airtime_sim::SimDuration;
use airtime_wlan::{run, NetworkConfig, Report};

/// Standard full-length measurement: 60 simulated seconds after a 5 s
/// warm-up — comfortably more data than the paper's ~2000-packet runs.
pub fn measure(mut cfg: NetworkConfig) -> Report {
    cfg.duration = SimDuration::from_secs(60);
    cfg.warmup = SimDuration::from_secs(5);
    run(&cfg)
}

/// Shorter measurement used where several dozen configurations are
/// swept in one binary.
pub fn measure_quick(mut cfg: NetworkConfig) -> Report {
    cfg.duration = SimDuration::from_secs(20);
    cfg.warmup = SimDuration::from_secs(3);
    run(&cfg)
}

/// Prints an aligned two-dimensional table: a header row then data
/// rows, separated by two spaces, columns right-aligned except the
/// first.
pub fn print_table(header: &[&str], rows: &[Vec<String>]) {
    let ncol = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), ncol, "ragged table row");
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let fmt_row = |cells: &[String]| {
        let mut line = String::new();
        for (i, cell) in cells.iter().enumerate() {
            if i == 0 {
                line.push_str(&format!("{:<w$}", cell, w = widths[0]));
            } else {
                line.push_str(&format!("  {:>w$}", cell, w = widths[i]));
            }
        }
        line
    };
    let head: Vec<String> = header.iter().map(|s| s.to_string()).collect();
    println!("{}", fmt_row(&head));
    println!(
        "{}",
        "-".repeat(widths.iter().sum::<usize>() + 2 * (ncol - 1))
    );
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

/// Formats a throughput in Mbit/s with three decimals.
pub fn mbps(x: f64) -> String {
    format!("{x:.3}")
}

/// Formats a fraction as a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting_helpers() {
        assert_eq!(mbps(5.1885), "5.189");
        assert_eq!(pct(0.1234), "12.3%");
    }

    #[test]
    #[should_panic(expected = "ragged table row")]
    fn ragged_rows_panic() {
        print_table(&["a", "b"], &[vec!["x".into()]]);
    }
}
