//! Figure 4 — UDP and TCP throughputs for three 11 Mbit/s nodes, uplink
//! and downlink.

use airtime_bench::{mbps, measure, print_table};
use airtime_wlan::{scenarios, Direction, SchedulerKind, Transport};

fn main() {
    println!("Figure 4: three 11M nodes exchanging data with the AP\n");
    let mut rows = Vec::new();
    for transport in [Transport::Udp, Transport::Tcp] {
        for direction in [Direction::Uplink, Direction::Downlink] {
            let r = measure(scenarios::updown_baseline(
                3,
                transport,
                direction,
                SchedulerKind::RoundRobin,
            ));
            rows.push(vec![
                format!("{transport:?} {direction:?}"),
                mbps(r.flows[0].goodput_mbps),
                mbps(r.flows[1].goodput_mbps),
                mbps(r.flows[2].goodput_mbps),
                mbps(r.total_goodput_mbps),
            ]);
        }
    }
    print_table(&["case", "n1", "n2", "n3", "total"], &rows);
    println!();
    println!("shape to check (paper Fig 4): per-node splits equal; UDP > TCP");
    println!("(TCP ack airtime); uplink > downlink (the solo AP sender pays a");
    println!("post-transmission backoff after every frame).");
}
