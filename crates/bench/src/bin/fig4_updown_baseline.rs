//! Figure 4 — UDP and TCP throughputs for three 11 Mbit/s nodes, uplink
//! and downlink.

use airtime_bench::{mbps, measure, Output};
use airtime_wlan::{scenarios, Direction, SchedulerKind, Transport};

fn main() {
    let mut out = Output::from_args("Figure 4: three 11M nodes exchanging data with the AP");
    let mut rows = Vec::new();
    for transport in [Transport::Udp, Transport::Tcp] {
        for direction in [Direction::Uplink, Direction::Downlink] {
            let r = measure(scenarios::updown_baseline(
                3,
                transport,
                direction,
                SchedulerKind::RoundRobin,
            ));
            rows.push(vec![
                format!("{transport:?} {direction:?}"),
                mbps(r.flows[0].goodput_mbps),
                mbps(r.flows[1].goodput_mbps),
                mbps(r.flows[2].goodput_mbps),
                mbps(r.total_goodput_mbps),
            ]);
        }
    }
    out.table("", &["case", "n1", "n2", "n3", "total"], &rows);
    out.note("shape to check (paper Fig 4): per-node splits equal; UDP > TCP");
    out.note("(TCP ack airtime); uplink > downlink (the solo AP sender pays a");
    out.note("post-transmission backoff after every frame).");
    out.finish();
}
