//! Figure 3 — throughput and channel-occupancy allocations under
//! throughput-based (RF) vs time-based (TF) fairness, for 11vs11,
//! 1vs11 and 1vs1.

use airtime_bench::{mbps, measure, pct, Output};
use airtime_phy::DataRate;
use airtime_wlan::{scenarios, SchedulerKind};

fn main() {
    let mut out =
        Output::from_args("Figure 3: achieved TCP throughput and occupancy under RF vs TF");
    let mut rows = Vec::new();
    for (case, rates) in [
        ("11vs11", [DataRate::B11, DataRate::B11]),
        ("1vs11", [DataRate::B1, DataRate::B11]),
        ("1vs1", [DataRate::B1, DataRate::B1]),
    ] {
        for (notion, sched) in [("RF", SchedulerKind::Fifo), ("TF", SchedulerKind::tbr())] {
            let r = measure(scenarios::uploaders(&rates, sched));
            rows.push(vec![
                format!("{case} {notion}"),
                mbps(r.flows[0].goodput_mbps),
                mbps(r.flows[1].goodput_mbps),
                mbps(r.total_goodput_mbps),
                pct(r.nodes[0].occupancy_share),
                pct(r.nodes[1].occupancy_share),
            ]);
        }
    }
    out.table(
        "",
        &["case", "R(n1)", "R(n2)", "total", "T(n1)", "T(n2)"],
        &rows,
    );
    out.note("shape to check (paper Fig 3): equal-rate cases identical under both");
    out.note("notions; 1vs11 under RF equal R but skewed T; under TF equal T and");
    out.note("n2(11M) far ahead on R, with n1(1M) matching its 1vs1 value.");
    out.finish();
}
