//! Figure 2 — the DCF anomaly: achieved TCP throughputs and channel
//! occupancy fractions for two uploaders, 11vs11 and 1vs11.

use airtime_bench::{mbps, measure, pct, Output};
use airtime_phy::DataRate;
use airtime_wlan::{scenarios, SchedulerKind};

fn main() {
    let mut out = Output::from_args("Figure 2: two competing TCP uploaders under stock DCF");
    let mut rows = Vec::new();
    for (label, rates) in [
        ("11 vs 11", [DataRate::B11, DataRate::B11]),
        ("11 vs 1", [DataRate::B11, DataRate::B1]),
    ] {
        let r = measure(scenarios::uploaders(&rates, SchedulerKind::Fifo));
        rows.push(vec![
            label.to_string(),
            format!("{}/{}", rates[0], rates[1]),
            mbps(r.flows[0].goodput_mbps),
            mbps(r.flows[1].goodput_mbps),
            mbps(r.total_goodput_mbps),
            pct(r.nodes[0].occupancy_share),
            pct(r.nodes[1].occupancy_share),
        ]);
    }
    out.table(
        "",
        &["case", "rates", "R(n1)", "R(n2)", "total", "T(n1)", "T(n2)"],
        &rows,
    );
    out.note("paper: 11vs11 total 5.08; 11vs1 ~0.67 each, total 1.34,");
    out.note("       slow node holding 6.4x the fast node's channel time");
    out.finish();
}
