//! Event-queue bench smoke: the pinned TBR-heavy Figure-9-class cell
//! under both queue backends and both tick modes.
//!
//! Run from CI after the functional suites. Writes `BENCH_pr4.json`
//! (override with `--json <path>`) with per-combination wall time,
//! events/sec, and the `sched.tick` dispatch share, then enforces the
//! PR-4 regression gates:
//!
//! 1. all four combinations produce a bit-identical [`Report`] and a
//!    conserving airtime-ledger audit;
//! 2. tick coalescing cuts `sched.tick` dispatches by at least 2×;
//! 3. the new default (timer wheel, coalesced ticks) is not slower
//!    than the old behaviour (binary heap, dense ticks) on this cell
//!    (10% noise allowance, best-of-3 walls, reps interleaved across
//!    combos so host drift doesn't bias one side).

use std::process::exit;

use airtime_bench::print_table;
use airtime_obs::json::Obj;
use airtime_obs::{AirtimeLedger, MetricsRegistry, NullObserver};
use airtime_phy::DataRate::{B1, B11, B2, B5_5};
use airtime_sim::{QueueBackend, SimDuration};
use airtime_wlan::{
    run_instrumented, run_observed, scenarios, Direction, NetworkConfig, SchedulerKind,
};

const REPS: usize = 3;

fn cell() -> NetworkConfig {
    let mut cfg = scenarios::tcp_stations(
        &[B11, B5_5, B2, B1],
        Direction::Downlink,
        SchedulerKind::tbr(),
    );
    cfg.duration = SimDuration::from_secs(20);
    cfg.warmup = SimDuration::from_secs(2);
    cfg
}

struct ComboResult {
    name: &'static str,
    backend: &'static str,
    coalesce: bool,
    wall_s: f64,
    events: u64,
    sched_ticks: u64,
    tick_dispatch_us: f64,
    report: String,
    conserved: bool,
}

fn new_combo(name: &'static str, backend: QueueBackend, coalesce: bool) -> ComboResult {
    ComboResult {
        name,
        backend: match backend {
            QueueBackend::Heap => "heap",
            QueueBackend::Wheel => "wheel",
        },
        coalesce,
        wall_s: f64::INFINITY,
        events: 0,
        sched_ticks: 0,
        tick_dispatch_us: 0.0,
        report: String::new(),
        conserved: false,
    }
}

fn combo_cfg(c: &ComboResult) -> NetworkConfig {
    let mut cfg = cell();
    cfg.queue_backend = match c.backend {
        "heap" => QueueBackend::Heap,
        _ => QueueBackend::Wheel,
    };
    cfg.coalesce_ticks = c.coalesce;
    cfg
}

/// One timed rep of a combo, folded into its best-of-REPS state.
fn measure_rep(c: &mut ComboResult) {
    let cfg = combo_cfg(c);
    let mut reg = MetricsRegistry::new();
    let r = run_instrumented(&cfg, &mut NullObserver, Some(&mut reg));
    let wall = reg.gauge_value("profile.wall_s").expect("profile.wall_s");
    if wall < c.wall_s {
        c.wall_s = wall;
        c.tick_dispatch_us = reg
            .gauge_value("profile.dispatch_us.sched.tick")
            .unwrap_or(0.0);
    }
    c.events = reg.counter_value("sim.events").expect("sim.events");
    c.sched_ticks = reg.counter_value("profile.events.sched.tick").unwrap_or(0);
    c.report = format!("{r:?}");
}

fn audit_combo(c: &mut ComboResult) {
    let cfg = combo_cfg(c);
    let mut ledger = AirtimeLedger::new();
    let _ = run_observed(&cfg, &mut ledger);
    c.conserved = ledger.audit().conserved;
}

fn main() {
    let mut json_path = String::from("BENCH_pr4.json");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--json" => match args.next() {
                Some(p) => json_path = p,
                None => {
                    eprintln!("error: --json needs a path");
                    exit(2);
                }
            },
            other => {
                eprintln!("error: unknown option '{other}' (only --json <path>)");
                exit(2);
            }
        }
    }

    println!("Event-queue smoke: fig9-class TBR cell (11/5.5/2/1M downlink TCP, 20 s)\n");
    let mut combos = [
        new_combo("heap/dense", QueueBackend::Heap, false),
        new_combo("heap/coalesced", QueueBackend::Heap, true),
        new_combo("wheel/dense", QueueBackend::Wheel, false),
        new_combo("wheel/coalesced", QueueBackend::Wheel, true),
    ];
    // Interleave reps across combos (A/B/A/B rather than A/A/B/B) so
    // slow drift in the host — thermal throttling, a noisy neighbour
    // spinning up mid-run — lands on every combo roughly equally
    // instead of biasing whichever combo ran last. Best-of-REPS per
    // combo is unchanged.
    for _rep in 0..REPS {
        for c in combos.iter_mut() {
            measure_rep(c);
        }
    }
    for c in combos.iter_mut() {
        audit_combo(c);
    }
    let combos = combos;

    let rows: Vec<Vec<String>> = combos
        .iter()
        .map(|c| {
            vec![
                c.name.to_string(),
                format!("{:.3}", c.wall_s),
                format!("{:.0}", c.events as f64 / c.wall_s),
                c.sched_ticks.to_string(),
                format!("{:.1}%", 100.0 * c.sched_ticks as f64 / c.events as f64),
                if c.conserved { "ok" } else { "FAIL" }.to_string(),
            ]
        })
        .collect();
    print_table(
        &[
            "combo",
            "wall_s",
            "events/s",
            "sched.ticks",
            "tick share",
            "audit",
        ],
        &rows,
    );

    // --- Gates ------------------------------------------------------
    let mut failures = Vec::new();

    let reference = &combos[0];
    for c in &combos[1..] {
        if c.report != reference.report {
            failures.push(format!("report mismatch: {} vs {}", c.name, reference.name));
        }
    }
    for c in &combos {
        if !c.conserved {
            failures.push(format!("ledger audit failed under {}", c.name));
        }
    }

    let dense_ticks = combos[2].sched_ticks;
    let lazy_ticks = combos[3].sched_ticks;
    let tick_reduction = dense_ticks as f64 / (lazy_ticks.max(1)) as f64;
    if tick_reduction < 2.0 {
        failures.push(format!(
            "coalescing cut sched.tick dispatches only {tick_reduction:.2}x (need >= 2x)"
        ));
    }

    // New default vs old behaviour: this is the regression the gate
    // protects against. Same-mode wheel-vs-heap ratios are recorded in
    // the JSON but not gated — on this cell the pending set stays tiny,
    // so both backends are in the noise against each other.
    let old_wall = combos[0].wall_s; // heap/dense
    let new_wall = combos[3].wall_s; // wheel/coalesced
    let wall_ratio = new_wall / old_wall;
    if wall_ratio > 1.10 {
        failures.push(format!(
            "wheel+coalescing slower than heap+dense: {new_wall:.3}s vs {old_wall:.3}s \
             ({wall_ratio:.2}x)"
        ));
    }

    println!();
    println!(
        "sched.tick reduction: {tick_reduction:.1}x ({dense_ticks} dense -> {lazy_ticks} lazy)"
    );
    println!(
        "new-default/old-default wall ratio: {wall_ratio:.3} (best-of-{REPS}, \
         wheel+coalesced vs heap+dense)"
    );

    // --- JSON mirror ------------------------------------------------
    let mut combo_json = Vec::new();
    for c in &combos {
        combo_json.push(
            Obj::new()
                .str("combo", c.name)
                .str("backend", c.backend)
                .bool("coalesce", c.coalesce)
                .f64("wall_s", c.wall_s)
                .u64("events", c.events)
                .f64("events_per_sec", c.events as f64 / c.wall_s)
                .u64("sched_ticks", c.sched_ticks)
                .f64("sched_tick_share", c.sched_ticks as f64 / c.events as f64)
                .f64("sched_tick_dispatch_us", c.tick_dispatch_us)
                .bool("audit_conserved", c.conserved)
                .finish(),
        );
    }
    let json = Obj::new()
        .str("bench", "queue_smoke")
        .str("cell", "fig9-class/tcp_down/tbr 11M+5.5M+2M+1M 20s")
        .raw("combos", &format!("[{}]", combo_json.join(",")))
        .f64("sched_tick_reduction", tick_reduction)
        .f64("new_vs_old_default_wall_ratio", wall_ratio)
        .bool(
            "reports_identical",
            failures.iter().all(|f| !f.starts_with("report")),
        )
        .bool("pass", failures.is_empty())
        .finish();
    if let Err(e) = std::fs::write(&json_path, json + "\n") {
        eprintln!("error: writing {json_path}: {e}");
        exit(1);
    }
    println!("wrote {json_path}");

    if !failures.is_empty() {
        for f in &failures {
            eprintln!("FAIL: {f}");
        }
        exit(1);
    }
    println!("all gates passed");
}
