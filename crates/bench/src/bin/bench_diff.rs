//! `bench-diff` — the CI regression gate over `BENCH_*.json` files.
//!
//! ```text
//! bench-diff [--threshold FRAC] [--json PATH] <baseline.json> <candidate.json>
//! ```
//!
//! Compares every `events_per_sec` leaf of the candidate against the
//! baseline (see `airtime_bench::diff` for the alignment rules) and
//! exits non-zero when throughput regressed beyond the threshold:
//! exit 0 = pass, 1 = regression, 2 = usage/parse/schema error.
//! `--json` mirrors the table (per-leaf deltas + verdict) into a
//! machine-readable document for downstream tooling.

use std::process::ExitCode;

use airtime_bench::diff::{compare, to_json, DiffMode};
use airtime_bench::print_table;

const USAGE: &str =
    "usage: bench-diff [--threshold FRAC] [--json PATH] <baseline.json> <candidate.json>\n\
    FRAC is the tolerated fractional events/sec drop (default 0.10;\n\
    0.25 tolerates a 25 % slowdown). --json PATH writes the comparison\n\
    (per-leaf deltas + verdict) as JSON. Exit 0 = pass, 1 = regression,\n\
    2 = usage/parse/schema error.";

fn fail(msg: &str) -> ExitCode {
    eprintln!("bench-diff: {msg}");
    eprintln!("{USAGE}");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut threshold = 0.10f64;
    let mut json_out: Option<String> = None;
    let mut files: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--threshold" => {
                let Some(v) = args.next() else {
                    return fail("--threshold needs a value");
                };
                match v.parse::<f64>() {
                    Ok(f) => threshold = f,
                    Err(_) => return fail(&format!("bad threshold '{v}'")),
                }
            }
            "--json" => {
                let Some(p) = args.next() else {
                    return fail("--json needs a path");
                };
                json_out = Some(p);
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            _ if a.starts_with('-') => return fail(&format!("unknown flag '{a}'")),
            _ => files.push(a),
        }
    }
    if files.len() != 2 {
        return fail("need exactly two files");
    }
    let read = |p: &str| std::fs::read_to_string(p).map_err(|e| format!("{p}: {e}"));
    let (base, cand) = match (read(&files[0]), read(&files[1])) {
        (Ok(b), Ok(c)) => (b, c),
        (Err(e), _) | (_, Err(e)) => return fail(&e),
    };
    let cmp = match compare(&base, &cand, threshold) {
        Ok(c) => c,
        Err(e) => return fail(&e),
    };
    println!(
        "bench-diff: {} vs {} ({} mode, threshold {:.0} %)",
        files[0],
        files[1],
        match cmp.mode {
            DiffMode::Aligned => "aligned",
            DiffMode::Headline => "headline",
        },
        threshold * 100.0
    );
    let rows: Vec<Vec<String>> = cmp
        .rows
        .iter()
        .map(|r| {
            vec![
                r.path.clone(),
                format!("{:.0}", r.base),
                format!("{:.0}", r.cand),
                format!("{:+.1} %", r.delta * 100.0),
                if r.regressed { "REGRESSED" } else { "ok" }.to_string(),
            ]
        })
        .collect();
    print_table(
        &["path", "base ev/s", "cand ev/s", "delta", "verdict"],
        &rows,
    );
    if let Some(path) = &json_out {
        if let Err(e) = std::fs::write(path, to_json(&cmp) + "\n") {
            return fail(&format!("writing {path}: {e}"));
        }
        println!("wrote {path}");
    }
    if cmp.regressed() {
        eprintln!(
            "bench-diff: FAIL — events/sec dropped more than {:.0} %",
            threshold * 100.0
        );
        ExitCode::from(1)
    } else {
        println!("bench-diff: pass");
        ExitCode::SUCCESS
    }
}
