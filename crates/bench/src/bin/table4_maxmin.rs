//! Table 4 — the max-min rate-adjustment check: two 11 Mbit/s
//! uploaders, n2 application-limited to 2.1 Mbit/s.

use airtime_bench::{mbps, measure, Output};
use airtime_wlan::{scenarios, SchedulerKind};

fn main() {
    let mut out =
        Output::from_args("Table 4: n2 app-limited to 2.1 Mb/s, n1 unconstrained, both 11M");
    let normal = measure(scenarios::bottleneck_table4(SchedulerKind::Fifo));
    let tbr = measure(scenarios::bottleneck_table4(SchedulerKind::tbr()));
    let rows = vec![
        vec![
            "n1".into(),
            mbps(normal.flows[0].goodput_mbps),
            mbps(tbr.flows[0].goodput_mbps),
            "2.9434".into(),
            "2.9542".into(),
        ],
        vec![
            "n2".into(),
            mbps(normal.flows[1].goodput_mbps),
            mbps(tbr.flows[1].goodput_mbps),
            "2.1276".into(),
            "2.1193".into(),
        ],
        vec![
            "total".into(),
            mbps(normal.total_goodput_mbps),
            mbps(tbr.total_goodput_mbps),
            "5.071".into(),
            "5.061".into(),
        ],
    ];
    out.table(
        "",
        &["node", "Exp-Normal", "Exp-TBR", "paper Normal", "paper TBR"],
        &rows,
    );
    out.note("shape to check (paper Table 4): no significant difference between");
    out.note("Normal and TBR — ADJUSTRATEEVENT reassigns n2's unused share to n1");
    out.note("instead of idling the channel.");
    out.finish();
}
