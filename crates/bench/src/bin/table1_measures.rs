//! Table 1 — fairness and efficiency measures under RF vs TF, from
//! both the analytic task model and full task-model simulations.

use airtime_bench::{mbps, Output};
use airtime_core::throughput_gap;
use airtime_model::{gamma_measured, task_schedule, FairnessPolicy, NodeSpec};
use airtime_phy::DataRate;
use airtime_wlan::{run, scenarios, SchedulerKind};

fn main() {
    let mut out = Output::from_args(
        "Table 1: measures under throughput-based (RF) vs time-based (TF)\nfairness, 1vs11 Mbit/s, equal 4 MB tasks",
    );

    // Analytic fluid task model.
    let nodes = [
        NodeSpec::with_gamma(gamma_measured(DataRate::B11).unwrap()),
        NodeSpec::with_gamma(gamma_measured(DataRate::B1).unwrap()),
    ];
    let tasks = [4e6, 4e6];
    let rf_a = task_schedule(&nodes, &tasks, FairnessPolicy::ThroughputFair);
    let tf_a = task_schedule(&nodes, &tasks, FairnessPolicy::TimeFair);

    // Simulated task model.
    let rf_s = run(&scenarios::task_model(
        &[DataRate::B11, DataRate::B1],
        4_000_000,
        SchedulerKind::RoundRobin,
    ));
    let tf_s = run(&scenarios::task_model(
        &[DataRate::B11, DataRate::B1],
        4_000_000,
        SchedulerKind::tbr(),
    ));

    // Fluid-model throughput gaps and aggregate.
    let rf_fluid = run(&airtime_bench_fluid(SchedulerKind::Fifo));
    let tf_fluid = run(&airtime_bench_fluid(SchedulerKind::tbr()));

    let rows = vec![
        vec![
            "fairness |R(i)-R(j)| (Mb/s)".into(),
            mbps(throughput_gap(
                &rf_fluid
                    .flows
                    .iter()
                    .map(|f| f.goodput_mbps)
                    .collect::<Vec<_>>(),
            )),
            mbps(throughput_gap(
                &tf_fluid
                    .flows
                    .iter()
                    .map(|f| f.goodput_mbps)
                    .collect::<Vec<_>>(),
            )),
        ],
        vec![
            "fairness |T(i)-T(j)|".into(),
            format!(
                "{:.3}",
                throughput_gap(
                    &rf_fluid
                        .nodes
                        .iter()
                        .map(|n| n.occupancy_share)
                        .collect::<Vec<_>>()
                )
            ),
            format!(
                "{:.3}",
                throughput_gap(
                    &tf_fluid
                        .nodes
                        .iter()
                        .map(|n| n.occupancy_share)
                        .collect::<Vec<_>>()
                )
            ),
        ],
        vec![
            "FinalTaskTime, analytic (s)".into(),
            format!("{:.1}", rf_a.final_task_time),
            format!("{:.1}", tf_a.final_task_time),
        ],
        vec![
            "AvgTaskTime, analytic (s)".into(),
            format!("{:.1}", rf_a.avg_task_time),
            format!("{:.1}", tf_a.avg_task_time),
        ],
        vec![
            "FinalTaskTime, simulated (s)".into(),
            format!("{:.1}", rf_s.final_task_time().unwrap().as_secs_f64()),
            format!("{:.1}", tf_s.final_task_time().unwrap().as_secs_f64()),
        ],
        vec![
            "AvgTaskTime, simulated (s)".into(),
            format!("{:.1}", rf_s.avg_task_time().unwrap().as_secs_f64()),
            format!("{:.1}", tf_s.avg_task_time().unwrap().as_secs_f64()),
        ],
        vec![
            "AggrThruput, fluid (Mb/s)".into(),
            mbps(rf_fluid.total_goodput_mbps),
            mbps(tf_fluid.total_goodput_mbps),
        ],
    ];
    out.table("", &["measure", "RF", "TF"], &rows);
    out.note("shape to check (paper Table 1): RF better on R-gap, TF better on");
    out.note("T-gap; FinalTaskTime the same; AvgTaskTime and AggrThruput better");
    out.note("under TF.");
    out.finish();
}

fn airtime_bench_fluid(sched: SchedulerKind) -> airtime_wlan::NetworkConfig {
    let mut cfg = scenarios::uploaders(&[DataRate::B11, DataRate::B1], sched);
    cfg.duration = airtime_sim::SimDuration::from_secs(60);
    cfg.warmup = airtime_sim::SimDuration::from_secs(5);
    cfg
}
