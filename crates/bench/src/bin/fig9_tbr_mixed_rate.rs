//! Figure 9 — mixed-rate pairs under Exp-Normal vs Exp-TBR, against the
//! analytic predictions Eq 6 (RF) and Eq 12 (TF). Downlink (9a) and
//! uplink (9b).

use airtime_bench::{mbps, measure, Output};
use airtime_model::{gamma_measured, rf_allocation, tf_allocation, NodeSpec};
use airtime_phy::DataRate;
use airtime_wlan::{scenarios, Direction, SchedulerKind};

fn main() {
    let mut out = Output::from_args("Figure 9: mixed-rate TCP pairs (n1 at 11M vs n2 slower)");
    for direction in [Direction::Downlink, Direction::Uplink] {
        let section = match direction {
            Direction::Downlink => "9(a) downlink",
            Direction::Uplink => "9(b) uplink",
        };
        let mut rows = Vec::new();
        let mut gains = Vec::new();
        for slow in [DataRate::B5_5, DataRate::B2, DataRate::B1] {
            let rates = [DataRate::B11, slow];
            let specs: Vec<NodeSpec> = rates
                .iter()
                .map(|r| NodeSpec::with_gamma(gamma_measured(*r).unwrap()))
                .collect();
            let eq6 = rf_allocation(&specs);
            let eq12 = tf_allocation(&specs);
            let normal = measure(scenarios::tcp_stations(
                &rates,
                direction,
                SchedulerKind::RoundRobin,
            ));
            let tbr = measure(scenarios::tcp_stations(
                &rates,
                direction,
                SchedulerKind::tbr(),
            ));
            gains.push((
                slow,
                tbr.total_goodput_mbps / normal.total_goodput_mbps - 1.0,
            ));
            for (label, n1, n2) in [
                ("Eq6", eq6.throughput[0], eq6.throughput[1]),
                (
                    "Exp-Normal",
                    normal.flows[0].goodput_mbps,
                    normal.flows[1].goodput_mbps,
                ),
                ("Eq12", eq12.throughput[0], eq12.throughput[1]),
                (
                    "Exp-TBR",
                    tbr.flows[0].goodput_mbps,
                    tbr.flows[1].goodput_mbps,
                ),
            ] {
                rows.push(vec![
                    format!("{slow} vs 11M {label}"),
                    mbps(n1),
                    mbps(n2),
                    mbps(n1 + n2),
                ]);
            }
        }
        out.table(section, &["case", "R(n1,11M)", "R(n2)", "total"], &rows);
        for (slow, gain) in gains {
            out.note(&format!(
                "TBR aggregate gain, {slow} vs 11M: {:.0}%",
                gain * 100.0
            ));
        }
        println!();
    }
    out.note("shape to check (paper Fig 9): Exp-Normal tracks Eq6, Exp-TBR tracks");
    out.note("Eq12; downlink gains ~6% (5.5v11), ~35% (2v11), ~103% (1v11), with");
    out.note("similar uplink improvements.");
    out.finish();
}
