//! Figure 1 — fraction of bytes transferred at each data rate, for the
//! three synthetic workshop sessions (WS-1..3) and the simulated EXP-1
//! office experiment.

use airtime_bench::{pct, Output};
use airtime_phy::DataRate;
use airtime_sim::SimDuration;
use airtime_trace::{bytes_by_rate, workshop_trace, WorkshopConfig};
use airtime_wlan::{run, scenarios, SchedulerKind};

fn main() {
    let mut out = Output::from_args("Figure 1: byte fractions per data rate");
    let mut rows = Vec::new();
    for (label, cfg) in [
        ("WS-1", WorkshopConfig::ws1()),
        ("WS-2", WorkshopConfig::ws2()),
        ("WS-3", WorkshopConfig::ws3()),
    ] {
        let trace = workshop_trace(&cfg, 2004);
        rows.push(row(label, &bytes_by_rate(&trace)));
    }
    // EXP-1 comes from the full simulator: saturating downlink UDP to
    // four receivers behind walls, with AARF rate adaptation.
    let mut cfg = scenarios::exp1_office(SchedulerKind::RoundRobin);
    cfg.duration = SimDuration::from_secs(60);
    cfg.warmup = SimDuration::from_secs(2);
    let report = run(&cfg);
    let trace = report.trace.as_ref().expect("EXP-1 records a trace");
    rows.push(row("EXP-1", &bytes_by_rate(trace)));
    out.table("", &["session", "1M", "2M", "5.5M", "11M"], &rows);
    out.note("shape to check (paper Fig 1): WS sessions mostly 11M with real");
    out.note("diversity below (WS-2 >30% under 11M); EXP-1 dominated by 1M");
    out.note("(paper: >50% of bytes at the lowest rate).");
    out.finish();
}

fn row(label: &str, fracs: &[(DataRate, f64)]) -> Vec<String> {
    let get = |rate| {
        fracs
            .iter()
            .find(|(r, _)| *r == rate)
            .map(|(_, f)| *f)
            .unwrap_or(0.0)
    };
    vec![
        label.to_string(),
        pct(get(DataRate::B1)),
        pct(get(DataRate::B2)),
        pct(get(DataRate::B5_5)),
        pct(get(DataRate::B11)),
    ]
}
