//! Figure 8 — TBR overhead check: two same-rate TCP nodes, uplink and
//! downlink, stock AP (Exp-Normal) vs TBR (Exp-TBR).

use airtime_bench::{mbps, measure, Output};
use airtime_phy::DataRate;
use airtime_wlan::{scenarios, Direction, SchedulerKind};

fn main() {
    let mut out = Output::from_args("Figure 8: same-rate pairs — TBR must cost nothing");
    let mut rows = Vec::new();
    for rate in [DataRate::B11, DataRate::B1] {
        for direction in [Direction::Uplink, Direction::Downlink] {
            for (label, sched) in [
                ("Normal", SchedulerKind::RoundRobin),
                ("TBR", SchedulerKind::tbr()),
            ] {
                let r = measure(scenarios::tcp_stations(&[rate, rate], direction, sched));
                rows.push(vec![
                    format!("{rate} {direction:?} {label}"),
                    mbps(r.flows[0].goodput_mbps),
                    mbps(r.flows[1].goodput_mbps),
                    mbps(r.total_goodput_mbps),
                ]);
            }
        }
    }
    out.table("", &["case", "n1", "n2", "total"], &rows);
    out.note("shape to check (paper Fig 8): Normal and TBR rows nearly identical");
    out.note("for every same-rate pair, i.e. the regulator adds no overhead when");
    out.note("there is nothing to regulate.");
    out.finish();
}
