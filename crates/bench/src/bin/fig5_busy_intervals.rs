//! Figure 5 — fraction of throughput achieved by the heaviest user in
//! busy one-second intervals at a congested residence-hall AP.

use airtime_bench::{pct, Output};
use airtime_sim::SimDuration;
use airtime_trace::{busy_intervals, residence_trace, ResidenceConfig};

fn main() {
    let mut out =
        Output::from_args("Figure 5: heaviest-user share of busy (>4 Mb/s) 1 s intervals");
    let trace = residence_trace(&ResidenceConfig::default(), 2002);
    let b = busy_intervals(&trace, SimDuration::from_secs(1), 4.0);
    out.note(&format!(
        "windows inspected: {}   busy: {} ({})",
        b.windows,
        b.busy,
        pct(b.busy as f64 / b.windows as f64)
    ));
    out.note(&format!(
        "mean heaviest-user share in busy windows: {}",
        pct(b.mean_heaviest())
    ));
    out.note(&format!(
        "busy windows where the heaviest user was effectively alone (>99%): {}",
        pct(b.solo_fraction(0.99))
    ));
    println!();
    // Distribution of the heaviest-user share, a textual view of the
    // figure's scatter.
    let mut rows = Vec::new();
    let edges = [0.0, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.99, 1.01];
    for w in edges.windows(2) {
        let count = b
            .heaviest_fraction
            .iter()
            .filter(|&&f| f >= w[0] && f < w[1])
            .count();
        rows.push(vec![
            format!("{:.0}-{:.0}%", w[0] * 100.0, (w[1].min(1.0)) * 100.0),
            count.to_string(),
            pct(count as f64 / b.busy.max(1) as f64),
        ]);
    }
    out.table("", &["heaviest share", "busy windows", "fraction"], &rows);
    out.note("shape to check (paper Fig 5): the heaviest user usually moves the");
    out.note("majority of bytes but almost never saturates the AP alone — other");
    out.note("users exchange significant data in most busy seconds.");
    out.finish();
}
