//! Ablations over TBR's design parameters (DESIGN.md §5): bucket depth,
//! fill period, adjustment period, uplink retry information, and the
//! scheduler family comparison. Run with
//! `cargo run -p airtime-bench --bin ablations --release`.

use airtime_bench::{mbps, measure_quick, pct, print_table};
use airtime_core::TbrConfig;
use airtime_phy::DataRate;
use airtime_sim::SimDuration;
use airtime_wlan::{scenarios, SchedulerKind};

fn main() {
    bucket_depth();
    fill_period();
    adjust_period();
    retry_info();
    scheduler_family();
}

/// 1vs11 downlink: bucket depth trades short-term burstiness against
/// long-term fairness precision (paper §4.5).
fn bucket_depth() {
    println!("Ablation: TBR bucket depth (1vs11 downlink)\n");
    let mut rows = Vec::new();
    for ms in [2, 5, 10, 20, 50, 100, 250] {
        let bucket = SimDuration::from_millis(ms);
        let tc = TbrConfig {
            bucket,
            initial_tokens: bucket.min(SimDuration::from_millis(5)),
            ..TbrConfig::default()
        };
        let r = measure_quick(scenarios::downloaders(
            &[DataRate::B11, DataRate::B1],
            SchedulerKind::Tbr(tc),
        ));
        rows.push(vec![
            format!("{ms} ms"),
            mbps(r.total_goodput_mbps),
            pct(r.nodes[0].occupancy_share),
            pct(r.utilization),
        ]);
    }
    print_table(
        &["bucket", "total Mb/s", "T(11M node)", "utilization"],
        &rows,
    );
    println!();
}

/// Fill-event granularity: finer ticks cost events, coarser ticks delay
/// unblocking.
fn fill_period() {
    println!("Ablation: FILLEVENT period (1vs11 downlink)\n");
    let mut rows = Vec::new();
    for us in [500, 1_000, 2_000, 5_000, 10_000, 50_000] {
        let tc = TbrConfig {
            fill_period: SimDuration::from_micros(us),
            ..TbrConfig::default()
        };
        let r = measure_quick(scenarios::downloaders(
            &[DataRate::B11, DataRate::B1],
            SchedulerKind::Tbr(tc),
        ));
        rows.push(vec![
            format!("{:.1} ms", us as f64 / 1000.0),
            mbps(r.total_goodput_mbps),
            pct(r.nodes[0].occupancy_share),
            pct(r.utilization),
        ]);
    }
    print_table(
        &["fill period", "total Mb/s", "T(11M node)", "utilization"],
        &rows,
    );
    println!();
}

/// ADJUSTRATEEVENT period: responsiveness of the Table 4 reallocation.
fn adjust_period() {
    println!("Ablation: ADJUSTRATEEVENT period (Table 4 scenario)\n");
    let mut rows = Vec::new();
    for ms in [250, 500, 1_000, 2_000, 5_000, 1_000_000] {
        let tc = TbrConfig {
            adjust_period: SimDuration::from_millis(ms),
            ..TbrConfig::default()
        };
        let r = measure_quick(scenarios::bottleneck_table4(SchedulerKind::Tbr(tc)));
        rows.push(vec![
            if ms >= 1_000_000 {
                "off".to_string()
            } else {
                format!("{ms} ms")
            },
            mbps(r.flows[0].goodput_mbps),
            mbps(r.flows[1].goodput_mbps),
            mbps(r.total_goodput_mbps),
        ]);
    }
    print_table(
        &["adjust period", "n1 (greedy)", "n2 (2.1M cap)", "total"],
        &rows,
    );
    println!("(in this scenario n2's unused share is small enough that token");
    println!("binding alone keeps n1 within ~2% of the stock AP, so the sweep is");
    println!("flat; the adjuster matters when a client is grossly idle — see the");
    println!("trickle-demand unit tests and the utilization column of the bucket");
    println!("sweep)");
    println!();
}

/// The paper's §4.2/§4.4 point: without uplink retry counts TBR slightly
/// under-charges lossy slow uplinks.
fn retry_info() {
    println!("Ablation: uplink retry information (1vs11 uplink, lossy slow node)\n");
    let mut rows = Vec::new();
    for (label, retry_info, estimator, fer) in [
        ("single-attempt estimate, 1% loss", false, false, 0.01),
        ("exact retry info, 1% loss", true, false, 0.01),
        ("single-attempt estimate, 20% loss", false, false, 0.20),
        ("sec-4.2 loss heuristic, 20% loss", false, true, 0.20),
        ("exact retry info, 20% loss", true, false, 0.20),
    ] {
        let mut cfg = scenarios::uploaders(&[DataRate::B11, DataRate::B1], SchedulerKind::tbr());
        cfg.uplink_retry_info = retry_info;
        cfg.uplink_loss_estimator = estimator;
        cfg.stations[1].link = airtime_wlan::LinkSpec::Fixed {
            rate: DataRate::B1,
            fer,
        };
        let r = measure_quick(cfg);
        rows.push(vec![
            label.to_string(),
            mbps(r.flows[0].goodput_mbps),
            mbps(r.flows[1].goodput_mbps),
            pct(r.nodes[1].occupancy_share),
        ]);
    }
    print_table(
        &["accounting", "R(11M)", "R(1M lossy)", "T(1M lossy)"],
        &rows,
    );
    println!("(the estimate leaves retransmission airtime unbilled, biasing the");
    println!("lossy slow node — the bias the paper observed in its prototype)");
    println!();
}

/// All four disciplines on the same mixed-rate downlink workload.
fn scheduler_family() {
    println!("Ablation: scheduler family (1vs11 downlink)\n");
    let mut rows = Vec::new();
    let tbr_red = TbrConfig {
        buffer: airtime_core::BufferPolicy::Red(airtime_core::RedConfig::default()),
        ..TbrConfig::default()
    };
    for (label, sched) in [
        ("FIFO", SchedulerKind::Fifo),
        ("RoundRobin", SchedulerKind::RoundRobin),
        ("DRR", SchedulerKind::Drr),
        ("TBR", SchedulerKind::tbr()),
        ("TBR+RED", SchedulerKind::Tbr(tbr_red)),
        ("TXOP", SchedulerKind::txop()),
    ] {
        let r = measure_quick(scenarios::downloaders(
            &[DataRate::B11, DataRate::B1],
            sched,
        ));
        rows.push(vec![
            label.to_string(),
            mbps(r.flows[0].goodput_mbps),
            mbps(r.flows[1].goodput_mbps),
            mbps(r.total_goodput_mbps),
            pct(r.nodes[0].occupancy_share),
        ]);
    }
    print_table(&["scheduler", "R(11M)", "R(1M)", "total", "T(11M)"], &rows);
    println!("(FIFO/RR/DRR are all throughput-fair; TBR, TBR+RED and TXOP are");
    println!("time-fair and lift the total)");
}
