//! Ablations over TBR's design parameters (DESIGN.md §5): bucket depth,
//! fill period, adjustment period, uplink retry information, and the
//! scheduler family comparison. Run with
//! `cargo run -p airtime-bench --bin ablations --release`.

use airtime_bench::{mbps, measure_quick, pct, Output};
use airtime_core::TbrConfig;
use airtime_phy::DataRate;
use airtime_sim::SimDuration;
use airtime_wlan::{scenarios, SchedulerKind};

fn main() {
    let mut out = Output::from_args("Ablations over TBR's design parameters");
    bucket_depth(&mut out);
    fill_period(&mut out);
    adjust_period(&mut out);
    retry_info(&mut out);
    scheduler_family(&mut out);
    out.finish();
}

/// 1vs11 downlink: bucket depth trades short-term burstiness against
/// long-term fairness precision (paper §4.5).
fn bucket_depth(out: &mut Output) {
    let mut rows = Vec::new();
    for ms in [2, 5, 10, 20, 50, 100, 250] {
        let bucket = SimDuration::from_millis(ms);
        let tc = TbrConfig {
            bucket,
            initial_tokens: bucket.min(SimDuration::from_millis(5)),
            ..TbrConfig::default()
        };
        let r = measure_quick(scenarios::downloaders(
            &[DataRate::B11, DataRate::B1],
            SchedulerKind::Tbr(tc),
        ));
        rows.push(vec![
            format!("{ms} ms"),
            mbps(r.total_goodput_mbps),
            pct(r.nodes[0].occupancy_share),
            pct(r.utilization),
        ]);
    }
    out.table(
        "Ablation: TBR bucket depth (1vs11 downlink)",
        &["bucket", "total Mb/s", "T(11M node)", "utilization"],
        &rows,
    );
}

/// Fill-event granularity: finer ticks cost events, coarser ticks delay
/// unblocking.
fn fill_period(out: &mut Output) {
    let mut rows = Vec::new();
    for us in [500, 1_000, 2_000, 5_000, 10_000, 50_000] {
        let tc = TbrConfig {
            fill_period: SimDuration::from_micros(us),
            ..TbrConfig::default()
        };
        let r = measure_quick(scenarios::downloaders(
            &[DataRate::B11, DataRate::B1],
            SchedulerKind::Tbr(tc),
        ));
        rows.push(vec![
            format!("{:.1} ms", us as f64 / 1000.0),
            mbps(r.total_goodput_mbps),
            pct(r.nodes[0].occupancy_share),
            pct(r.utilization),
        ]);
    }
    out.table(
        "Ablation: FILLEVENT period (1vs11 downlink)",
        &["fill period", "total Mb/s", "T(11M node)", "utilization"],
        &rows,
    );
}

/// ADJUSTRATEEVENT period: responsiveness of the Table 4 reallocation.
fn adjust_period(out: &mut Output) {
    let mut rows = Vec::new();
    for ms in [250, 500, 1_000, 2_000, 5_000, 1_000_000] {
        let tc = TbrConfig {
            adjust_period: SimDuration::from_millis(ms),
            ..TbrConfig::default()
        };
        let r = measure_quick(scenarios::bottleneck_table4(SchedulerKind::Tbr(tc)));
        rows.push(vec![
            if ms >= 1_000_000 {
                "off".to_string()
            } else {
                format!("{ms} ms")
            },
            mbps(r.flows[0].goodput_mbps),
            mbps(r.flows[1].goodput_mbps),
            mbps(r.total_goodput_mbps),
        ]);
    }
    out.table(
        "Ablation: ADJUSTRATEEVENT period (Table 4 scenario)",
        &["adjust period", "n1 (greedy)", "n2 (2.1M cap)", "total"],
        &rows,
    );
    out.note("(in this scenario n2's unused share is small enough that token");
    out.note("binding alone keeps n1 within ~2% of the stock AP, so the sweep is");
    out.note("flat; the adjuster matters when a client is grossly idle — see the");
    out.note("trickle-demand unit tests and the utilization column of the bucket");
    out.note("sweep)");
    println!();
}

/// The paper's §4.2/§4.4 point: without uplink retry counts TBR slightly
/// under-charges lossy slow uplinks.
fn retry_info(out: &mut Output) {
    let mut rows = Vec::new();
    for (label, retry_info, estimator, fer) in [
        ("single-attempt estimate, 1% loss", false, false, 0.01),
        ("exact retry info, 1% loss", true, false, 0.01),
        ("single-attempt estimate, 20% loss", false, false, 0.20),
        ("sec-4.2 loss heuristic, 20% loss", false, true, 0.20),
        ("exact retry info, 20% loss", true, false, 0.20),
    ] {
        let mut cfg = scenarios::uploaders(&[DataRate::B11, DataRate::B1], SchedulerKind::tbr());
        cfg.uplink_retry_info = retry_info;
        cfg.uplink_loss_estimator = estimator;
        cfg.stations[1].link = airtime_wlan::LinkSpec::Fixed {
            rate: DataRate::B1,
            fer,
        };
        let r = measure_quick(cfg);
        rows.push(vec![
            label.to_string(),
            mbps(r.flows[0].goodput_mbps),
            mbps(r.flows[1].goodput_mbps),
            pct(r.nodes[1].occupancy_share),
        ]);
    }
    out.table(
        "Ablation: uplink retry information (1vs11 uplink, lossy slow node)",
        &["accounting", "R(11M)", "R(1M lossy)", "T(1M lossy)"],
        &rows,
    );
    out.note("(the estimate leaves retransmission airtime unbilled, biasing the");
    out.note("lossy slow node — the bias the paper observed in its prototype)");
    println!();
}

/// Every registry family on the same mixed-rate downlink workload,
/// plus the TBR+RED buffer variant.
fn scheduler_family(out: &mut Output) {
    let mut rows = Vec::new();
    let tbr_red = TbrConfig {
        buffer: airtime_core::BufferPolicy::Red(airtime_core::RedConfig::default()),
        ..TbrConfig::default()
    };
    // The registry is the row source, so a family added to
    // `airtime-sched` shows up here without touching this binary.
    let mut entries: Vec<(String, SchedulerKind)> = airtime_sched::FAMILIES
        .iter()
        .map(|f| {
            let kind = SchedulerKind::from_family(f.name).expect("registry names resolve");
            (f.name.to_string(), kind)
        })
        .collect();
    entries.push(("tbr+red".to_string(), SchedulerKind::Tbr(tbr_red)));
    for (label, sched) in entries {
        let r = measure_quick(scenarios::downloaders(
            &[DataRate::B11, DataRate::B1],
            sched.clone(),
        ));
        let time_fair = airtime_sched::FAMILIES
            .iter()
            .find(|f| f.name == sched.family())
            .is_some_and(|f| f.time_fair);
        rows.push(vec![
            label,
            if time_fair { "time" } else { "thpt" }.to_string(),
            mbps(r.flows[0].goodput_mbps),
            mbps(r.flows[1].goodput_mbps),
            mbps(r.total_goodput_mbps),
            pct(r.nodes[0].occupancy_share),
        ]);
    }
    out.table(
        "Ablation: scheduler family (1vs11 downlink)",
        &["scheduler", "fair", "R(11M)", "R(1M)", "total", "T(11M)"],
        &rows,
    );
    out.note("(the throughput-fair families split goodput evenly and the total");
    out.note("collapses toward the slow rate; the time-fair families split the");
    out.note("medium evenly and lift the total — rows come from the");
    out.note("airtime-sched family registry)");
}
