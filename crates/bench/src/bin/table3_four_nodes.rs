//! Table 3 — four uploaders at 1, 2, 11, 11 Mbit/s under RF and TF:
//! analytic predictions (from Table 2's γ) and full simulation.

use airtime_bench::{mbps, measure, Output};
use airtime_model::{gamma_measured, rf_allocation, tf_allocation, NodeSpec};
use airtime_phy::DataRate;
use airtime_wlan::{scenarios, SchedulerKind};

fn main() {
    let mut out = Output::from_args("Table 3: four nodes at 1, 2, 11, 11 Mbit/s");
    let mix = [DataRate::B1, DataRate::B2, DataRate::B11, DataRate::B11];
    let specs: Vec<NodeSpec> = mix
        .iter()
        .map(|r| NodeSpec::with_gamma(gamma_measured(*r).unwrap()))
        .collect();
    let rf_pred = rf_allocation(&specs);
    let tf_pred = tf_allocation(&specs);
    let rf_sim = measure(scenarios::four_node_mix(SchedulerKind::Fifo));
    let tf_sim = measure(scenarios::four_node_mix(SchedulerKind::tbr()));

    let take = |xs: &[f64]| -> Vec<String> {
        let mut row: Vec<String> = xs.iter().map(|x| mbps(*x)).collect();
        row.push(mbps(xs.iter().sum()));
        row
    };
    let mut rows = Vec::new();
    for (label, vals) in [
        (
            "RF analytic (paper: 0.436 x4, 1.742)",
            rf_pred.throughput.clone(),
        ),
        (
            "RF simulated",
            rf_sim.flows.iter().map(|f| f.goodput_mbps).collect(),
        ),
        (
            "TF analytic (paper: .202/.373/1.30/1.30, 3.175)",
            tf_pred.throughput.clone(),
        ),
        (
            "TF simulated",
            tf_sim.flows.iter().map(|f| f.goodput_mbps).collect(),
        ),
    ] {
        let mut row = vec![label.to_string()];
        row.extend(take(&vals));
        rows.push(row);
    }
    out.table(
        "",
        &[
            "allocation",
            "R(n1,1M)",
            "R(n2,2M)",
            "R(n3,11M)",
            "R(n4,11M)",
            "total",
        ],
        &rows,
    );
    out.note(&format!(
        "TF/RF aggregate gain: analytic {:.0}%, simulated {:.0}% (paper: 82%)",
        (tf_pred.total / rf_pred.total - 1.0) * 100.0,
        (tf_sim.total_goodput_mbps / rf_sim.total_goodput_mbps - 1.0) * 100.0
    ));
    out.finish();
}
