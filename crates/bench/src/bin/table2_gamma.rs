//! Table 2 — baseline throughput γ(d, 1500, 2): total TCP throughput of
//! two same-rate uploaders, per rate.

use airtime_bench::{mbps, measure, Output};
use airtime_model::{gamma_measured, gamma_tcp_table2};
use airtime_phy::DataRate;
use airtime_wlan::{scenarios, SchedulerKind};

fn main() {
    let mut out =
        Output::from_args("Table 2: baseline throughput gamma(d, s=1500B, n=2), TCP uplink");
    let mut rows = Vec::new();
    for rate in DataRate::ALL_B.iter().rev() {
        let cfg = scenarios::uploaders(&[*rate, *rate], SchedulerKind::Fifo);
        let r = measure(cfg);
        rows.push(vec![
            rate.to_string(),
            mbps(r.total_goodput_mbps),
            mbps(gamma_tcp_table2(*rate)),
            mbps(gamma_measured(*rate).unwrap_or(f64::NAN)),
        ]);
    }
    out.table(
        "",
        &["rate", "simulated (Mb/s)", "closed-form", "paper"],
        &rows,
    );
    out.finish();
}
