//! Micro-benchmarks of the hot paths: TBR's per-packet operations (the
//! code that would run inside a real AP driver at line rate), the DCF
//! world's event processing, and the event queue itself.

use std::hint::black_box;

use airtime_bench::harness::Group;
use airtime_core::{ApScheduler, ClientId, QueuedPacket, TbrConfig, TbrScheduler};
use airtime_mac::{DcfConfig, DcfWorld, Frame, MacEffect, NodeId};
use airtime_phy::{DataRate, LinkErrorModel, Phy80211b};
use airtime_sim::{EventQueue, SimDuration, SimRng, SimTime};

fn bench_tbr_ops() {
    let mut g = Group::new("tbr");
    {
        let mut tbr = TbrScheduler::new(TbrConfig::default());
        let now = SimTime::from_secs(1);
        for i in 0..8 {
            tbr.on_associate(ClientId(i), SimTime::ZERO);
        }
        let airtime = SimDuration::from_micros(1617);
        let mut i = 0u64;
        g.bench("enqueue_dequeue_complete_cycle", || {
            let client = ClientId((i % 8) as usize);
            tbr.enqueue(
                QueuedPacket {
                    client,
                    handle: i,
                    bytes: 1500,
                },
                now,
            );
            if let Some(p) = tbr.dequeue(now) {
                tbr.on_complete(p.client, airtime, true, now);
            }
            i += 1;
            black_box(&tbr);
        });
    }
    {
        let mut tbr = TbrScheduler::new(TbrConfig::default());
        for i in 0..32 {
            tbr.on_associate(ClientId(i), SimTime::ZERO);
        }
        let mut t = SimTime::ZERO;
        g.bench("fill_tick_32_clients", || {
            t += SimDuration::from_millis(2);
            tbr.on_tick(t);
            black_box(&tbr);
        });
    }
    g.finish();
}

fn bench_dcf() {
    let mut g = Group::new("dcf");
    g.bench("saturated_two_station_second", || {
        let mut world = DcfWorld::new(
            DcfConfig {
                phy: Phy80211b::default(),
                ap: NodeId(0),
                retry_rate_fallback: false,
                rts_threshold: None,
            },
            vec![LinkErrorModel::Perfect; 3],
            SimRng::new(7),
        );
        let mut queue = EventQueue::new();
        let mut handle = 0u64;
        let mut offer = |world: &mut DcfWorld, queue: &mut EventQueue<_>, now, src| {
            let frame = Frame {
                src,
                dst: NodeId(0),
                msdu_bytes: 1500,
                rate: DataRate::B11,
                handle,
            };
            handle += 1;
            if let Ok(fx) = world.offer_frame(now, frame) {
                for e in fx {
                    if let MacEffect::Schedule { at, event } = e {
                        queue.schedule(at, event);
                    }
                }
            }
        };
        offer(&mut world, &mut queue, SimTime::ZERO, NodeId(1));
        offer(&mut world, &mut queue, SimTime::ZERO, NodeId(2));
        let end = SimTime::from_secs(1);
        while let Some((t, ev)) = queue.pop() {
            if t > end {
                break;
            }
            for e in world.handle(t, ev) {
                if let MacEffect::Schedule { at, event } = e {
                    queue.schedule(at, event);
                }
            }
            for n in [NodeId(1), NodeId(2)] {
                if world.can_accept(n) {
                    offer(&mut world, &mut queue, t, n);
                }
            }
        }
        black_box(world.stats());
    });
    g.finish();
}

fn bench_event_queue() {
    let mut g = Group::new("event_queue");
    g.bench("schedule_pop_1k", || {
        let mut q = EventQueue::new();
        for i in 0..1000u64 {
            q.schedule(SimTime::from_micros((i * 7919) % 10_000), i);
        }
        let mut acc = 0u64;
        while let Some((_, e)) = q.pop() {
            acc = acc.wrapping_add(e);
        }
        black_box(acc);
    });
    g.finish();
}

fn main() {
    bench_tbr_ops();
    bench_dcf();
    bench_event_queue();
}
