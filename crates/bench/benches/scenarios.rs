//! Wall-clock timing of the paper's scenarios: how long each experiment
//! takes to *simulate* (one group per reproduced table/figure).

use std::hint::black_box;

use airtime_bench::harness::Group;
use airtime_phy::DataRate;
use airtime_sim::SimDuration;
use airtime_wlan::{run, scenarios, Direction, NetworkConfig, SchedulerKind, Transport};

fn quick(mut cfg: NetworkConfig) -> NetworkConfig {
    cfg.duration = SimDuration::from_secs(3);
    cfg.warmup = SimDuration::from_millis(500);
    cfg
}

fn bench_figures() {
    let mut g = Group::new("figures");
    let cfg = quick(scenarios::uploaders(
        &[DataRate::B11, DataRate::B1],
        SchedulerKind::Fifo,
    ));
    g.bench("fig2_dcf_anomaly_1v11", || {
        black_box(run(&cfg));
    });
    let cfg = quick(scenarios::uploaders(
        &[DataRate::B11, DataRate::B1],
        SchedulerKind::tbr(),
    ));
    g.bench("fig3_tbr_1v11", || {
        black_box(run(&cfg));
    });
    let cfg = quick(scenarios::updown_baseline(
        3,
        Transport::Udp,
        Direction::Uplink,
        SchedulerKind::RoundRobin,
    ));
    g.bench("fig4_three_udp_up", || {
        black_box(run(&cfg));
    });
    let cfg = quick(scenarios::downloaders(
        &[DataRate::B11, DataRate::B1],
        SchedulerKind::tbr(),
    ));
    g.bench("fig9_tbr_downlink_1v11", || {
        black_box(run(&cfg));
    });
    let cfg = quick(scenarios::exp1_office(SchedulerKind::RoundRobin));
    g.bench("fig1_exp1_office", || {
        black_box(run(&cfg));
    });
    g.finish();
}

fn bench_tables() {
    let mut g = Group::new("tables");
    let cfg = quick(scenarios::uploaders(
        &[DataRate::B11, DataRate::B11],
        SchedulerKind::Fifo,
    ));
    g.bench("table2_gamma_11m", || {
        black_box(run(&cfg));
    });
    let cfg = quick(scenarios::four_node_mix(SchedulerKind::tbr()));
    g.bench("table3_four_node_tbr", || {
        black_box(run(&cfg));
    });
    let cfg = quick(scenarios::bottleneck_table4(SchedulerKind::tbr()));
    g.bench("table4_maxmin_tbr", || {
        black_box(run(&cfg));
    });
    let mut cfg = scenarios::task_model(
        &[DataRate::B11, DataRate::B1],
        500_000,
        SchedulerKind::tbr(),
    );
    cfg.duration = SimDuration::from_secs(60);
    g.bench("table1_task_model_tbr", || {
        black_box(run(&cfg));
    });
    g.finish();
}

fn bench_traces() {
    let mut g = Group::new("traces");
    let cfg = airtime_trace::WorkshopConfig {
        duration: SimDuration::from_secs(600),
        ..airtime_trace::WorkshopConfig::ws2()
    };
    g.bench("fig1_workshop_generation", || {
        black_box(airtime_trace::workshop_trace(&cfg, 7));
    });
    let cfg = airtime_trace::ResidenceConfig {
        duration: SimDuration::from_secs(1800),
        ..Default::default()
    };
    let trace = airtime_trace::residence_trace(&cfg, 7);
    g.bench("fig5_residence_analysis", || {
        black_box(airtime_trace::busy_intervals(
            &trace,
            SimDuration::from_secs(1),
            4.0,
        ));
    });
    g.finish();
}

fn main() {
    bench_figures();
    bench_tables();
    bench_traces();
}
