//! Criterion timing of the paper's scenarios: how long each experiment
//! takes to *simulate* (one group per reproduced table/figure).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use airtime_phy::DataRate;
use airtime_sim::SimDuration;
use airtime_wlan::{run, scenarios, Direction, NetworkConfig, SchedulerKind, Transport};

fn quick(mut cfg: NetworkConfig) -> NetworkConfig {
    cfg.duration = SimDuration::from_secs(3);
    cfg.warmup = SimDuration::from_millis(500);
    cfg
}

fn bench_figures(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);
    g.bench_function("fig2_dcf_anomaly_1v11", |b| {
        let cfg = quick(scenarios::uploaders(
            &[DataRate::B11, DataRate::B1],
            SchedulerKind::Fifo,
        ));
        b.iter(|| black_box(run(&cfg)));
    });
    g.bench_function("fig3_tbr_1v11", |b| {
        let cfg = quick(scenarios::uploaders(
            &[DataRate::B11, DataRate::B1],
            SchedulerKind::tbr(),
        ));
        b.iter(|| black_box(run(&cfg)));
    });
    g.bench_function("fig4_three_udp_up", |b| {
        let cfg = quick(scenarios::updown_baseline(
            3,
            Transport::Udp,
            Direction::Uplink,
            SchedulerKind::RoundRobin,
        ));
        b.iter(|| black_box(run(&cfg)));
    });
    g.bench_function("fig9_tbr_downlink_1v11", |b| {
        let cfg = quick(scenarios::downloaders(
            &[DataRate::B11, DataRate::B1],
            SchedulerKind::tbr(),
        ));
        b.iter(|| black_box(run(&cfg)));
    });
    g.bench_function("fig1_exp1_office", |b| {
        let cfg = quick(scenarios::exp1_office(SchedulerKind::RoundRobin));
        b.iter(|| black_box(run(&cfg)));
    });
    g.finish();
}

fn bench_tables(c: &mut Criterion) {
    let mut g = c.benchmark_group("tables");
    g.sample_size(10);
    g.bench_function("table2_gamma_11m", |b| {
        let cfg = quick(scenarios::uploaders(
            &[DataRate::B11, DataRate::B11],
            SchedulerKind::Fifo,
        ));
        b.iter(|| black_box(run(&cfg)));
    });
    g.bench_function("table3_four_node_tbr", |b| {
        let cfg = quick(scenarios::four_node_mix(SchedulerKind::tbr()));
        b.iter(|| black_box(run(&cfg)));
    });
    g.bench_function("table4_maxmin_tbr", |b| {
        let cfg = quick(scenarios::bottleneck_table4(SchedulerKind::tbr()));
        b.iter(|| black_box(run(&cfg)));
    });
    g.bench_function("table1_task_model_tbr", |b| {
        let mut cfg = scenarios::task_model(
            &[DataRate::B11, DataRate::B1],
            500_000,
            SchedulerKind::tbr(),
        );
        cfg.duration = SimDuration::from_secs(60);
        b.iter(|| black_box(run(&cfg)));
    });
    g.finish();
}

fn bench_traces(c: &mut Criterion) {
    let mut g = c.benchmark_group("traces");
    g.sample_size(10);
    g.bench_function("fig1_workshop_generation", |b| {
        let cfg = airtime_trace::WorkshopConfig {
            duration: SimDuration::from_secs(600),
            ..airtime_trace::WorkshopConfig::ws2()
        };
        b.iter(|| black_box(airtime_trace::workshop_trace(&cfg, 7)));
    });
    g.bench_function("fig5_residence_analysis", |b| {
        let cfg = airtime_trace::ResidenceConfig {
            duration: SimDuration::from_secs(1800),
            ..Default::default()
        };
        let trace = airtime_trace::residence_trace(&cfg, 7);
        b.iter(|| {
            black_box(airtime_trace::busy_intervals(
                &trace,
                SimDuration::from_secs(1),
                4.0,
            ))
        });
    });
    g.finish();
}

criterion_group!(benches, bench_figures, bench_tables, bench_traces);
criterion_main!(benches);
