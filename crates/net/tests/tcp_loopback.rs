//! End-to-end TCP tests over a simulated loopback path with configurable
//! delay, bottleneck pacing and scripted losses.
//!
//! These exercise the whole sender↔receiver loop — ack clocking, delayed
//! acks, fast retransmit, RTO recovery, app-level rate limiting — the
//! dynamics the WLAN experiments later rely on.

use std::collections::VecDeque;

use airtime_net::{
    FlowId, Packet, PacketKind, RateLimiter, ReceiverEffect, SenderEffect, TcpConfig, TcpReceiver,
    TcpSender,
};
use airtime_sim::{EventQueue, SimDuration, SimTime};

#[derive(Clone, Copy, Debug)]
enum Ev {
    /// Packet arrives at the far end of the link.
    Arrive(Packet),
    RtoFired(u64),
    DelAckFired(u64),
    /// Re-poll the sender (app-limit pacing).
    Pump,
    /// Bottleneck queue service completes.
    Serve,
}

/// A one-hop duplex path: sender → [bottleneck queue] → receiver, acks
/// return after `delay`. `drop_seqs` lists data segments to drop (first
/// transmission occurrence of each listed entry).
struct Loopback {
    sender: TcpSender,
    receiver: TcpReceiver,
    queue: EventQueue<Ev>,
    now: SimTime,
    delay: SimDuration,
    /// Bottleneck: serialization time per data packet (None = infinite).
    service_time: Option<SimDuration>,
    bottleneck: VecDeque<Packet>,
    serving: bool,
    drop_list: Vec<u64>,
    completed_at: Option<SimTime>,
    data_packets_on_wire: u64,
    ack_packets_on_wire: u64,
}

impl Loopback {
    fn new(sender: TcpSender, delay: SimDuration, service_time: Option<SimDuration>) -> Self {
        let receiver = TcpReceiver::new(sender.flow(), TcpConfig::default());
        Loopback {
            sender,
            receiver,
            queue: EventQueue::new(),
            now: SimTime::ZERO,
            delay,
            service_time,
            bottleneck: VecDeque::new(),
            serving: false,
            drop_list: Vec::new(),
            completed_at: None,
            data_packets_on_wire: 0,
            ack_packets_on_wire: 0,
        }
    }

    fn sender_effects(&mut self, fx: Vec<SenderEffect>) {
        for e in fx {
            match e {
                SenderEffect::ArmRto { at, generation } => {
                    self.queue.schedule(at, Ev::RtoFired(generation));
                }
                SenderEffect::Complete => self.completed_at = Some(self.now),
            }
        }
    }

    fn receiver_effects(&mut self, fx: Vec<ReceiverEffect>) {
        for e in fx {
            match e {
                ReceiverEffect::SendAck { ack_seq } => {
                    let pkt = self.receiver.ack_packet(ack_seq);
                    self.ack_packets_on_wire += 1;
                    self.queue.schedule(self.now + self.delay, Ev::Arrive(pkt));
                }
                ReceiverEffect::ArmDelAck { at, generation } => {
                    self.queue.schedule(at, Ev::DelAckFired(generation));
                }
            }
        }
    }

    fn pump_sender(&mut self) {
        let mut fx = Vec::new();
        while let Some(pkt) = self.sender.poll_packet(self.now, &mut fx) {
            if let PacketKind::TcpData { seq } = pkt.kind {
                if let Some(pos) = self.drop_list.iter().position(|&s| s == seq) {
                    self.drop_list.remove(pos);
                    continue; // lost in flight
                }
                self.data_packets_on_wire += 1;
                self.send_data(pkt);
            }
        }
        self.sender_effects(fx);
        if let Some(at) = self.sender.next_app_ready(self.now) {
            self.queue.schedule(at, Ev::Pump);
        }
    }

    fn send_data(&mut self, pkt: Packet) {
        match self.service_time {
            None => self.queue.schedule(self.now + self.delay, Ev::Arrive(pkt)),
            Some(st) => {
                self.bottleneck.push_back(pkt);
                if !self.serving {
                    self.serving = true;
                    self.queue.schedule(self.now + st, Ev::Serve);
                }
            }
        }
    }

    fn run_until(&mut self, end: SimTime) {
        self.pump_sender();
        while let Some((t, ev)) = self.queue.pop() {
            if t > end {
                break;
            }
            self.now = t;
            match ev {
                Ev::Arrive(pkt) => match pkt.kind {
                    PacketKind::TcpData { seq } => {
                        let fx = self.receiver.on_data(t, seq);
                        self.receiver_effects(fx);
                    }
                    PacketKind::TcpAck { ack_seq } => {
                        let mut fx = Vec::new();
                        self.sender.on_ack(t, ack_seq, &mut fx);
                        self.sender_effects(fx);
                        self.pump_sender();
                    }
                    PacketKind::UdpData { .. } => unreachable!("TCP-only harness"),
                },
                Ev::RtoFired(generation) => {
                    let mut fx = Vec::new();
                    self.sender.on_rto_fired(t, generation, &mut fx);
                    self.sender_effects(fx);
                    self.pump_sender();
                }
                Ev::DelAckFired(generation) => {
                    let fx = self.receiver.on_delack_fired(generation);
                    self.receiver_effects(fx);
                }
                Ev::Pump => self.pump_sender(),
                Ev::Serve => {
                    if let Some(pkt) = self.bottleneck.pop_front() {
                        self.queue.schedule(self.now + self.delay, Ev::Arrive(pkt));
                    }
                    if self.bottleneck.is_empty() {
                        self.serving = false;
                    } else {
                        self.queue
                            .schedule(self.now + self.service_time.unwrap(), Ev::Serve);
                    }
                }
            }
            if self.completed_at.is_some() {
                break;
            }
        }
    }
}

fn task_sender(bytes: u64, limit: Option<RateLimiter>) -> TcpSender {
    TcpSender::new(FlowId(0), TcpConfig::default(), Some(bytes), limit)
}

#[test]
fn lossless_task_completes_in_order() {
    let mss = TcpConfig::default().mss;
    let mut lb = Loopback::new(
        task_sender(100 * mss, None),
        SimDuration::from_millis(5),
        None,
    );
    lb.run_until(SimTime::from_secs(30));
    let done = lb.completed_at.expect("task should complete");
    assert_eq!(lb.receiver.contiguous_segments(), 100);
    assert_eq!(lb.receiver.duplicates(), 0);
    // 100 segments, cwnd doubling from 2 per delayed-acked RTT (10 ms):
    // should finish within a second, not via timeouts.
    assert!(done < SimTime::from_secs(2), "done at {done}");
    let (_, _, timeouts) = lb.sender.stats();
    assert_eq!(timeouts, 0);
}

#[test]
fn delayed_acks_halve_ack_traffic() {
    let mss = TcpConfig::default().mss;
    let mut lb = Loopback::new(
        task_sender(200 * mss, None),
        SimDuration::from_millis(5),
        None,
    );
    lb.run_until(SimTime::from_secs(30));
    assert!(lb.completed_at.is_some());
    let ratio = lb.ack_packets_on_wire as f64 / lb.data_packets_on_wire as f64;
    assert!(
        (0.45..0.75).contains(&ratio),
        "ack/data ratio {ratio} (acks={}, data={})",
        lb.ack_packets_on_wire,
        lb.data_packets_on_wire
    );
}

#[test]
fn single_loss_recovers_via_fast_retransmit() {
    let mss = TcpConfig::default().mss;
    let mut lb = Loopback::new(
        task_sender(120 * mss, None),
        SimDuration::from_millis(5),
        None,
    );
    lb.drop_list.push(30);
    lb.run_until(SimTime::from_secs(30));
    let done = lb.completed_at.expect("task should complete despite loss");
    let (_, retx, timeouts) = lb.sender.stats();
    assert!(retx >= 1, "the hole must be retransmitted");
    assert_eq!(timeouts, 0, "fast retransmit should avoid the RTO");
    assert!(done < SimTime::from_secs(2), "done at {done}");
    assert_eq!(lb.receiver.contiguous_segments(), 120);
}

#[test]
fn burst_loss_recovers_eventually() {
    let mss = TcpConfig::default().mss;
    let mut lb = Loopback::new(
        task_sender(80 * mss, None),
        SimDuration::from_millis(5),
        None,
    );
    // Drop an early burst — with cwnd this small, recovery may need the
    // retransmission timer.
    lb.drop_list.extend([2, 3, 4, 5]);
    lb.run_until(SimTime::from_secs(60));
    assert!(
        lb.completed_at.is_some(),
        "must complete despite burst loss"
    );
    assert_eq!(lb.receiver.contiguous_segments(), 80);
}

#[test]
fn throughput_tracks_bottleneck() {
    // 1500-byte packets served every 4 ms → 3 Mbit/s bottleneck. TCP
    // goodput (MSS portion) should approach mss/1500 × 3 Mbit/s.
    let mss = TcpConfig::default().mss;
    let mut lb = Loopback::new(
        TcpSender::new(FlowId(0), TcpConfig::default(), None, None),
        SimDuration::from_millis(2),
        Some(SimDuration::from_micros(4000)),
    );
    let end = SimTime::from_secs(20);
    lb.run_until(end);
    let goodput =
        lb.receiver.contiguous_segments() as f64 * mss as f64 * 8.0 / end.as_secs_f64() / 1e6;
    let ceiling = 3.0 * mss as f64 / 1500.0;
    assert!(
        goodput > 0.85 * ceiling && goodput <= ceiling * 1.02,
        "goodput {goodput} vs ceiling {ceiling}"
    );
}

#[test]
fn app_limited_sender_holds_its_configured_rate() {
    // Table 4's n2: an 11 Mbit/s-capable path but the application only
    // generates 2.1 Mbit/s.
    let mss = TcpConfig::default().mss;
    let lim = RateLimiter::new(2_100_000.0, 2 * mss);
    let mut lb = Loopback::new(
        TcpSender::new(FlowId(0), TcpConfig::default(), None, Some(lim)),
        SimDuration::from_millis(2),
        None,
    );
    let end = SimTime::from_secs(20);
    lb.run_until(end);
    let rate =
        lb.receiver.contiguous_segments() as f64 * mss as f64 * 8.0 / end.as_secs_f64() / 1e6;
    assert!((1.9..2.15).contains(&rate), "rate {rate} Mbit/s");
}

#[test]
fn deterministic_replay() {
    let mss = TcpConfig::default().mss;
    let run = || {
        let mut lb = Loopback::new(
            task_sender(150 * mss, None),
            SimDuration::from_millis(3),
            Some(SimDuration::from_micros(1500)),
        );
        lb.drop_list.extend([7, 8, 40]);
        lb.run_until(SimTime::from_secs(60));
        (
            lb.completed_at,
            lb.data_packets_on_wire,
            lb.ack_packets_on_wire,
        )
    };
    assert_eq!(run(), run());
}
