//! UDP datagram sources.
//!
//! Figure 4 of the paper compares UDP and TCP throughput for three
//! competing nodes; UDP senders there run "at the saturation rate", i.e.
//! they always have another datagram ready. [`UdpSource`] models both
//! that saturating mode and a token-bucket-paced mode (used by the EXP-1
//! wired sender and by trace generation).

use airtime_sim::SimTime;

use crate::limit::RateLimiter;
use crate::packet::{FlowId, Packet, PacketKind};

/// Configuration of a UDP source.
#[derive(Clone, Debug)]
pub struct UdpConfig {
    /// Datagram size on the wire, headers included.
    pub datagram_bytes: u64,
    /// `None` = saturating source; `Some(bps)` = paced at that bit rate.
    pub rate_bps: Option<f64>,
    /// Total bytes to send (`None` = unbounded).
    pub task_bytes: Option<u64>,
}

impl Default for UdpConfig {
    fn default() -> Self {
        UdpConfig {
            datagram_bytes: 1500,
            rate_bps: None,
            task_bytes: None,
        }
    }
}

/// A UDP sender: no congestion control, no acknowledgements.
#[derive(Debug)]
pub struct UdpSource {
    flow: FlowId,
    config: UdpConfig,
    limiter: Option<RateLimiter>,
    next_seq: u64,
    sent_bytes: u64,
}

impl UdpSource {
    /// Creates a source for `flow`.
    pub fn new(flow: FlowId, config: UdpConfig) -> Self {
        let limiter = config
            .rate_bps
            .map(|bps| RateLimiter::new(bps, config.datagram_bytes * 2));
        UdpSource {
            flow,
            config,
            limiter,
            next_seq: 0,
            sent_bytes: 0,
        }
    }

    /// The flow this source belongs to.
    pub fn flow(&self) -> FlowId {
        self.flow
    }

    /// Bytes emitted so far.
    pub fn sent_bytes(&self) -> u64 {
        self.sent_bytes
    }

    /// True once a bounded source has emitted its full task.
    pub fn is_exhausted(&self) -> bool {
        self.config.task_bytes.is_some_and(|t| self.sent_bytes >= t)
    }

    /// Emits the next datagram if pacing (and the task budget) allows.
    pub fn poll_packet(&mut self, now: SimTime) -> Option<Packet> {
        if self.is_exhausted() {
            return None;
        }
        if let Some(lim) = self.limiter.as_mut() {
            if !lim.try_consume(now, self.config.datagram_bytes) {
                return None;
            }
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.sent_bytes += self.config.datagram_bytes;
        Some(Packet {
            flow: self.flow,
            kind: PacketKind::UdpData { seq },
            bytes: self.config.datagram_bytes,
        })
    }

    /// When pacing will next release a datagram; `None` when not
    /// pacing-blocked (saturating source, or tokens available).
    pub fn next_ready(&self, now: SimTime) -> Option<SimTime> {
        if self.is_exhausted() {
            return None;
        }
        let lim = self.limiter.as_ref()?;
        let at = lim.ready_at(now, self.config.datagram_bytes);
        (at > now).then_some(at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn saturating_source_always_ready() {
        let mut s = UdpSource::new(FlowId(0), UdpConfig::default());
        for i in 0..100 {
            let p = s.poll_packet(SimTime::ZERO).unwrap();
            assert_eq!(p.kind, PacketKind::UdpData { seq: i });
            assert_eq!(p.bytes, 1500);
        }
        assert_eq!(s.next_ready(SimTime::ZERO), None);
        assert_eq!(s.sent_bytes(), 150_000);
    }

    #[test]
    fn paced_source_respects_rate() {
        let mut s = UdpSource::new(
            FlowId(0),
            UdpConfig {
                rate_bps: Some(1_200_000.0), // 100 × 1500 B per second
                ..UdpConfig::default()
            },
        );
        let mut now = SimTime::ZERO;
        let mut sent = 0;
        while now < SimTime::from_secs(2) {
            if s.poll_packet(now).is_some() {
                sent += 1;
            } else {
                now = s.next_ready(now).expect("pacing-blocked");
            }
        }
        // 2 s at 100 pkt/s plus the 2-packet initial burst.
        assert!((200..=203).contains(&sent), "sent={sent}");
    }

    #[test]
    fn task_bound_exhausts() {
        let mut s = UdpSource::new(
            FlowId(1),
            UdpConfig {
                task_bytes: Some(4500),
                ..UdpConfig::default()
            },
        );
        assert!(s.poll_packet(SimTime::ZERO).is_some());
        assert!(s.poll_packet(SimTime::ZERO).is_some());
        assert!(s.poll_packet(SimTime::ZERO).is_some());
        assert!(s.is_exhausted());
        assert!(s.poll_packet(SimTime::ZERO).is_none());
        assert_eq!(s.next_ready(SimTime::ZERO), None);
    }
}
