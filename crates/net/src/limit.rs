//! Token-bucket rate limiting.
//!
//! Used for the paper's Table 4 scenario ("limiting the sending rate of
//! the application generating TCP packets at n2") and for paced UDP
//! sources. The bucket is exact-integer over nanoseconds via f64 token
//! arithmetic — precise enough that a 2.1 Mbit/s limit measures as
//! 2.1 Mbit/s over any experiment-length window.

use airtime_sim::{SimDuration, SimTime};

/// A byte-granularity token bucket.
#[derive(Clone, Debug)]
pub struct RateLimiter {
    rate_bytes_per_sec: f64,
    burst_bytes: f64,
    tokens: f64,
    last_fill: SimTime,
}

impl RateLimiter {
    /// Creates a limiter at `rate_bps` bits/s with a `burst_bytes` cap.
    /// The bucket starts full.
    ///
    /// # Panics
    ///
    /// Panics if the rate or burst is non-positive.
    pub fn new(rate_bps: f64, burst_bytes: u64) -> Self {
        assert!(rate_bps > 0.0, "rate must be positive");
        assert!(burst_bytes > 0, "burst must be positive");
        RateLimiter {
            rate_bytes_per_sec: rate_bps / 8.0,
            burst_bytes: burst_bytes as f64,
            tokens: burst_bytes as f64,
            last_fill: SimTime::ZERO,
        }
    }

    /// The configured rate in bits/s.
    pub fn rate_bps(&self) -> f64 {
        self.rate_bytes_per_sec * 8.0
    }

    /// Tokens on hand at `now`, as a pure function of the state at the
    /// last successful consumption. Failed polls must not mutate the
    /// bucket: callers poll after every simulator dispatch, and the
    /// dispatch cadence differs across tick modes, so accumulating
    /// `dt * rate` in per-poll increments would partition the float
    /// sum differently per mode — rounding drift that eventually moves
    /// a `ready_at` by a nanosecond and breaks cross-mode determinism
    /// (caught by `verify-determinism` on the adjust-period ablation).
    fn available(&self, now: SimTime) -> f64 {
        let dt = now.saturating_since(self.last_fill).as_secs_f64();
        (self.tokens + dt * self.rate_bytes_per_sec).min(self.burst_bytes)
    }

    /// Consumes `bytes` if available; returns whether it succeeded.
    pub fn try_consume(&mut self, now: SimTime, bytes: u64) -> bool {
        let available = self.available(now);
        if available >= bytes as f64 {
            self.tokens = available - bytes as f64;
            self.last_fill = self.last_fill.max(now);
            true
        } else {
            false
        }
    }

    /// Earliest time at which `bytes` tokens will be available, assuming
    /// no consumption in between. Returns `now` if already available.
    pub fn ready_at(&self, now: SimTime, bytes: u64) -> SimTime {
        let deficit = bytes as f64 - self.available(now);
        if deficit <= 0.0 {
            now
        } else {
            // Round up and never return a zero wait, or a caller loop
            // that advances time by `ready_at` could spin forever.
            let ns = (deficit / self.rate_bytes_per_sec * 1e9).ceil().max(1.0);
            now + SimDuration::from_nanos(ns as u64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_full_and_drains() {
        let mut l = RateLimiter::new(8_000.0, 1000); // 1000 B/s, 1000 B burst
        assert!(l.try_consume(SimTime::ZERO, 600));
        assert!(l.try_consume(SimTime::ZERO, 400));
        assert!(!l.try_consume(SimTime::ZERO, 1));
    }

    #[test]
    fn refills_at_rate() {
        let mut l = RateLimiter::new(8_000.0, 1000);
        assert!(l.try_consume(SimTime::ZERO, 1000));
        // After 0.5 s: 500 bytes back.
        assert!(l.try_consume(SimTime::from_millis(500), 500));
        assert!(!l.try_consume(SimTime::from_millis(500), 1));
    }

    #[test]
    fn burst_caps_accumulation() {
        let mut l = RateLimiter::new(8_000.0, 1000);
        // After a long idle period, only `burst` is available.
        assert!(l.try_consume(SimTime::from_secs(100), 1000));
        assert!(!l.try_consume(SimTime::from_secs(100), 1));
    }

    #[test]
    fn ready_at_predicts_availability() {
        let mut l = RateLimiter::new(8_000.0, 1000);
        assert!(l.try_consume(SimTime::ZERO, 1000));
        let at = l.ready_at(SimTime::ZERO, 250);
        assert_eq!(at, SimTime::from_millis(250));
        assert!(l.try_consume(at, 250));
        // Already-available bytes are ready immediately.
        let l2 = RateLimiter::new(8_000.0, 1000);
        assert_eq!(
            l2.ready_at(SimTime::from_secs(5), 10),
            SimTime::from_secs(5)
        );
    }

    #[test]
    fn long_run_rate_is_exact() {
        // Consume 1500-byte packets as fast as allowed at 2.1 Mbit/s for
        // 10 s: total must be 2.1 Mbit/s ± one packet.
        let mut l = RateLimiter::new(2_100_000.0, 3000);
        let mut now = SimTime::ZERO;
        let end = SimTime::from_secs(10);
        let mut sent = 0u64;
        while now < end {
            if l.try_consume(now, 1500) {
                sent += 1500;
            } else {
                now = l.ready_at(now, 1500);
            }
        }
        let mbps = sent as f64 * 8.0 / 10.0 / 1e6;
        assert!((mbps - 2.1).abs() < 0.01, "mbps={mbps}");
    }

    #[test]
    fn failed_polls_leave_the_bucket_bit_identical() {
        // Two buckets, same consumption schedule; one is additionally
        // polled (and refused) at many awkward intermediate times, the
        // way dense tick mode polls after every dispatch. The extra
        // polls must not perturb the float state — otherwise the two
        // tick modes drift apart by a nanosecond over a long run.
        let mut quiet = RateLimiter::new(2_100_000.0, 3000);
        let mut noisy = RateLimiter::new(2_100_000.0, 3000);
        let mut now = SimTime::ZERO;
        for step in 1..500u64 {
            now += SimDuration::from_nanos(5_714_285 + step % 7);
            for poll in 1..4u64 {
                let mid = now + SimDuration::from_nanos(poll * 997);
                assert!(!noisy.try_consume(mid, 3001)); // always refused
            }
            let a = quiet.try_consume(now, 1500);
            let b = noisy.try_consume(now, 1500);
            assert_eq!(a, b, "step {step}");
            assert_eq!(
                quiet.ready_at(now, 1500),
                noisy.ready_at(now, 1500),
                "step {step}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn zero_rate_panics() {
        let _ = RateLimiter::new(0.0, 10);
    }
}
