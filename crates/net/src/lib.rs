//! Transport and traffic models.
//!
//! The paper's experiments are TCP file transfers (with one UDP
//! comparison in Figure 4), and its central deployment claim — that TBR
//! needs **no client modification** for TCP — rests on *ack clocking*:
//! delaying a flow's packets at the AP (data for downlink flows, acks
//! for uplink flows) throttles the sender (§4.1, citing Jacobson).
//! Reproducing that claim requires a TCP model that is actually
//! ack-clocked, so this crate implements a compact but real TCP Reno
//! with NewReno partial-ack recovery:
//!
//! - slow start / congestion avoidance with ssthresh,
//! - duplicate-ack detection, fast retransmit and fast recovery,
//! - retransmission timeout with exponential backoff and go-back-N,
//! - a delayed-ack receiver (one ACK per two segments, or on a timer),
//! - optional application-level rate limiting (the paper's Table 4
//!   bottleneck scenario), and
//! - task-model support (a flow that ends after N bytes and reports its
//!   completion time — the paper's *AvgTaskTime* / *FinalTaskTime*).
//!
//! [`udp`] provides saturating and rate-paced datagram sources, and
//! [`limit`] the token-bucket [`RateLimiter`] shared by both.
//!
//! Everything is an explicit state machine driven by `on_*` calls and
//! emitting effects, in the same style as `airtime-mac`: no internal
//! event loop, fully deterministic, directly unit-testable.

pub mod limit;
pub mod packet;
pub mod tcp;
pub mod udp;

pub use limit::RateLimiter;
pub use packet::{FlowId, Packet, PacketKind};
pub use tcp::{ReceiverEffect, SenderEffect, TcpConfig, TcpReceiver, TcpSender};
pub use udp::{UdpConfig, UdpSource};
