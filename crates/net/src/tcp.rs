//! A compact, ack-clocked TCP Reno with NewReno partial-ack recovery.
//!
//! Sequence numbers count *segments* (MSS units), not bytes: the paper's
//! experiments use fixed 1500-byte packets, so segment granularity loses
//! nothing and keeps the arithmetic transparent. A data packet on the
//! wire is `mss + header_bytes` long; a pure ACK is `ack_bytes`.
//!
//! Both endpoints are explicit state machines:
//!
//! - [`TcpSender::poll_packet`] emits the next segment the congestion
//!   window (and optional application rate limit) allows; the embedder
//!   calls it whenever there is room downstream.
//! - [`TcpSender::on_ack`] / [`TcpSender::on_rto_fired`] advance the
//!   congestion machinery and request timer (re)arms via
//!   [`SenderEffect`].
//! - [`TcpReceiver::on_data`] implements cumulative acking with delayed
//!   ACKs (every second segment or a timer) and immediate duplicate ACKs
//!   on holes, which is what makes fast retransmit work.
//!
//! Timer cancellation uses generation stamps (like the MAC crate): the
//! embedder never needs to delete events, it just delivers them and the
//! state machine ignores stale generations.

use std::collections::BTreeSet;

use airtime_sim::{SimDuration, SimTime};

use crate::limit::RateLimiter;
use crate::packet::{FlowId, Packet, PacketKind};

/// Tunables for one TCP connection. Defaults model a 2004-era stack.
#[derive(Clone, Debug)]
pub struct TcpConfig {
    /// Maximum segment size in bytes (payload per data packet).
    pub mss: u64,
    /// TCP/IP header bytes added to each data segment on the wire.
    pub header_bytes: u64,
    /// Size of a pure ACK on the wire.
    pub ack_bytes: u64,
    /// Initial congestion window in segments.
    pub init_cwnd: f64,
    /// Initial slow-start threshold in segments.
    pub init_ssthresh: f64,
    /// Receiver-window cap on cwnd, in segments.
    pub max_cwnd: f64,
    /// Lower bound on the retransmission timeout.
    pub min_rto: SimDuration,
    /// Upper bound on the retransmission timeout.
    pub max_rto: SimDuration,
    /// RTO before any RTT sample exists.
    pub initial_rto: SimDuration,
    /// Send an ACK after this many unacknowledged in-order segments.
    pub delack_segments: u32,
    /// ...or after this long, whichever comes first.
    pub delack_timeout: SimDuration,
}

impl Default for TcpConfig {
    fn default() -> Self {
        TcpConfig {
            mss: 1460,
            header_bytes: 40,
            ack_bytes: 40,
            init_cwnd: 2.0,
            init_ssthresh: 64.0,
            max_cwnd: 42.0,
            min_rto: SimDuration::from_millis(200),
            max_rto: SimDuration::from_secs(60),
            initial_rto: SimDuration::from_secs(1),
            delack_segments: 2,
            delack_timeout: SimDuration::from_millis(100),
        }
    }
}

/// Timer/control requests from the sender to the embedder.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SenderEffect {
    /// (Re)arm the retransmission timer. Deliver
    /// [`TcpSender::on_rto_fired`] with this generation at `at`; stale
    /// generations are ignored, so previous arms need not be cancelled.
    ArmRto {
        /// Due time.
        at: SimTime,
        /// Generation stamp.
        generation: u64,
    },
    /// The task-model byte budget has been fully acknowledged.
    Complete,
}

/// Requests from the receiver to the embedder.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ReceiverEffect {
    /// Transmit a cumulative ACK for everything below `ack_seq`.
    SendAck {
        /// Next expected segment.
        ack_seq: u64,
    },
    /// Arm the delayed-ACK timer; deliver
    /// [`TcpReceiver::on_delack_fired`] with this generation at `at`.
    ArmDelAck {
        /// Due time.
        at: SimTime,
        /// Generation stamp.
        generation: u64,
    },
}

/// The sending half of a TCP connection.
#[derive(Debug)]
pub struct TcpSender {
    config: TcpConfig,
    flow: FlowId,
    /// Next never-before-sent segment.
    next_seq: u64,
    /// Highest segment ever handed to the wire (for app-limit exemption
    /// of go-back-N retransmissions).
    max_seq_sent: u64,
    /// Cumulative acknowledgement point.
    highest_acked: u64,
    cwnd: f64,
    ssthresh: f64,
    dupacks: u32,
    /// `Some(recover)` while in fast recovery.
    recovery: Option<u64>,
    retx_queue: Vec<u64>,
    rto_generation: u64,
    rto_armed: bool,
    rto_backoff: u32,
    srtt: Option<f64>,
    rttvar: f64,
    rtt_probe: Option<(u64, SimTime)>,
    app_limit: Option<RateLimiter>,
    /// Total segments to transfer (`None` = unbounded fluid flow).
    task_segments: Option<u64>,
    completed: bool,
    // Stats.
    segments_sent: u64,
    retransmits: u64,
    timeouts: u64,
}

impl TcpSender {
    /// Creates a sender for `flow`. `task_bytes = None` models the
    /// paper's fluid flows; `Some(n)` is a task that completes (and
    /// fires [`SenderEffect::Complete`]) once `n` bytes are acked.
    /// `app_limit` caps the rate at which *new* data enters the network
    /// (Table 4's bottleneck sender).
    pub fn new(
        flow: FlowId,
        config: TcpConfig,
        task_bytes: Option<u64>,
        app_limit: Option<RateLimiter>,
    ) -> Self {
        let task_segments = task_bytes.map(|b| b.div_ceil(config.mss).max(1));
        TcpSender {
            cwnd: config.init_cwnd,
            ssthresh: config.init_ssthresh,
            config,
            flow,
            next_seq: 0,
            max_seq_sent: 0,
            highest_acked: 0,
            dupacks: 0,
            recovery: None,
            retx_queue: Vec::new(),
            rto_generation: 0,
            rto_armed: false,
            rto_backoff: 0,
            srtt: None,
            rttvar: 0.0,
            rtt_probe: None,
            app_limit,
            task_segments,
            completed: false,
            segments_sent: 0,
            retransmits: 0,
            timeouts: 0,
        }
    }

    /// The flow this sender belongs to.
    pub fn flow(&self) -> FlowId {
        self.flow
    }

    /// Segments in flight.
    pub fn flight(&self) -> u64 {
        self.next_seq - self.highest_acked
    }

    /// Current congestion window (segments).
    pub fn cwnd(&self) -> f64 {
        self.cwnd
    }

    /// Cumulatively acknowledged payload bytes.
    pub fn acked_bytes(&self) -> u64 {
        self.highest_acked * self.config.mss
    }

    /// True once a task-model flow has been fully acknowledged.
    pub fn is_complete(&self) -> bool {
        self.completed
    }

    /// (sent, retransmitted, timeouts) counters.
    pub fn stats(&self) -> (u64, u64, u64) {
        (self.segments_sent, self.retransmits, self.timeouts)
    }

    fn effective_window(&self) -> u64 {
        self.cwnd.min(self.config.max_cwnd).floor().max(1.0) as u64
    }

    fn data_packet(&self, seq: u64) -> Packet {
        Packet {
            flow: self.flow,
            kind: PacketKind::TcpData { seq },
            bytes: self.config.mss + self.config.header_bytes,
        }
    }

    /// Emits the next transmittable segment, if any. The embedder should
    /// keep calling until `None` (or until downstream queue space runs
    /// out). Timer-arm effects are appended to `effects`.
    pub fn poll_packet(&mut self, now: SimTime, effects: &mut Vec<SenderEffect>) -> Option<Packet> {
        if self.completed {
            return None;
        }
        // Retransmissions first; exempt from the application limiter.
        if let Some(seq) = self.retx_queue.first().copied() {
            self.retx_queue.remove(0);
            self.segments_sent += 1;
            self.retransmits += 1;
            if !self.rto_armed {
                self.arm_rto(now, effects);
            }
            return Some(self.data_packet(seq));
        }
        // New (or go-back-N re-entered) data under the window.
        if self.flight() >= self.effective_window() {
            return None;
        }
        if let Some(total) = self.task_segments {
            if self.next_seq >= total {
                return None;
            }
        }
        let is_new_data = self.next_seq >= self.max_seq_sent;
        if is_new_data {
            if let Some(lim) = self.app_limit.as_mut() {
                if !lim.try_consume(now, self.config.mss) {
                    return None;
                }
            }
        } else {
            self.retransmits += 1;
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.max_seq_sent = self.max_seq_sent.max(self.next_seq);
        self.segments_sent += 1;
        if self.rtt_probe.is_none() && is_new_data {
            self.rtt_probe = Some((seq, now));
        }
        if !self.rto_armed {
            self.arm_rto(now, effects);
        }
        Some(self.data_packet(seq))
    }

    /// When the application limiter (if any) will next release a
    /// segment. `None` when sending is not limiter-blocked.
    pub fn next_app_ready(&self, now: SimTime) -> Option<SimTime> {
        let lim = self.app_limit.as_ref()?;
        let at = lim.ready_at(now, self.config.mss);
        (at > now).then_some(at)
    }

    /// Processes a cumulative acknowledgement.
    pub fn on_ack(&mut self, now: SimTime, ack_seq: u64, effects: &mut Vec<SenderEffect>) {
        // Compare against the highest segment ever sent, not `next_seq`:
        // after a go-back-N timeout the receiver may ack out-of-order
        // data it had buffered beyond the rewound send point.
        if self.completed || ack_seq > self.max_seq_sent {
            return;
        }
        if ack_seq > self.highest_acked {
            self.on_new_ack(now, ack_seq, effects);
        } else if ack_seq == self.highest_acked && self.flight() > 0 {
            self.on_dup_ack();
        }
    }

    fn on_new_ack(&mut self, now: SimTime, ack_seq: u64, effects: &mut Vec<SenderEffect>) {
        // RTT sampling (Karn: the probe is cleared on any retransmission).
        if let Some((seq, sent_at)) = self.rtt_probe {
            if ack_seq > seq {
                let sample = now.saturating_since(sent_at).as_secs_f64();
                match self.srtt {
                    None => {
                        self.srtt = Some(sample);
                        self.rttvar = sample / 2.0;
                    }
                    Some(srtt) => {
                        let err = sample - srtt;
                        self.srtt = Some(srtt + err / 8.0);
                        self.rttvar += (err.abs() - self.rttvar) / 4.0;
                    }
                }
                self.rtt_probe = None;
            }
        }
        self.rto_backoff = 0;
        match self.recovery {
            Some(recover) if ack_seq < recover => {
                // NewReno partial ack: retransmit the next hole, deflate.
                let advanced = (ack_seq - self.highest_acked) as f64;
                self.cwnd = (self.cwnd - advanced + 1.0).max(1.0);
                if !self.retx_queue.contains(&ack_seq) {
                    self.retx_queue.push(ack_seq);
                }
            }
            Some(_) => {
                // Full ack: leave fast recovery.
                self.recovery = None;
                self.dupacks = 0;
                self.cwnd = self.ssthresh;
            }
            None => {
                self.dupacks = 0;
                if self.cwnd < self.ssthresh {
                    self.cwnd += 1.0; // slow start
                } else {
                    self.cwnd += 1.0 / self.cwnd; // congestion avoidance
                }
            }
        }
        self.cwnd = self.cwnd.min(self.config.max_cwnd);
        self.highest_acked = ack_seq;
        // A rewound send point can be overtaken by an ack for previously
        // buffered data; everything below it needs no retransmission.
        self.next_seq = self.next_seq.max(ack_seq);
        self.retx_queue.retain(|&s| s >= ack_seq);
        if self.flight() > 0 || !self.retx_queue.is_empty() {
            self.arm_rto(now, effects);
        } else {
            self.rto_armed = false;
            self.rto_generation += 1;
        }
        if let Some(total) = self.task_segments {
            if self.highest_acked >= total && !self.completed {
                self.completed = true;
                effects.push(SenderEffect::Complete);
            }
        }
    }

    fn on_dup_ack(&mut self) {
        self.dupacks += 1;
        if self.recovery.is_some() {
            self.cwnd = (self.cwnd + 1.0).min(self.config.max_cwnd + 3.0);
        } else if self.dupacks == 3 {
            // Fast retransmit + fast recovery.
            let flight = self.flight() as f64;
            self.ssthresh = (flight / 2.0).max(2.0);
            self.cwnd = self.ssthresh + 3.0;
            self.recovery = Some(self.next_seq);
            if !self.retx_queue.contains(&self.highest_acked) {
                self.retx_queue.push(self.highest_acked);
            }
            self.rtt_probe = None;
        }
    }

    fn current_rto(&self) -> SimDuration {
        let base = match self.srtt {
            Some(srtt) => SimDuration::from_secs_f64(srtt + 4.0 * self.rttvar),
            None => self.config.initial_rto,
        };
        let clamped = base.max(self.config.min_rto).min(self.config.max_rto);
        let scaled = clamped * (1u64 << self.rto_backoff.min(8));
        scaled.min(self.config.max_rto)
    }

    fn arm_rto(&mut self, now: SimTime, effects: &mut Vec<SenderEffect>) {
        self.rto_generation += 1;
        self.rto_armed = true;
        effects.push(SenderEffect::ArmRto {
            at: now + self.current_rto(),
            generation: self.rto_generation,
        });
    }

    /// Handles a retransmission-timer expiry with generation stamp
    /// `generation` (stale stamps are ignored).
    pub fn on_rto_fired(&mut self, now: SimTime, generation: u64, effects: &mut Vec<SenderEffect>) {
        if !self.rto_armed || generation != self.rto_generation || self.completed {
            return;
        }
        if self.flight() == 0 && self.retx_queue.is_empty() {
            self.rto_armed = false;
            return;
        }
        self.timeouts += 1;
        let flight = self.flight() as f64;
        self.ssthresh = (flight / 2.0).max(2.0);
        self.cwnd = 1.0;
        self.dupacks = 0;
        self.recovery = None;
        self.retx_queue.clear();
        self.rtt_probe = None;
        // Go-back-N: re-send from the acknowledgement point.
        self.next_seq = self.highest_acked;
        self.rto_backoff += 1;
        self.arm_rto(now, effects);
    }
}

/// The receiving half of a TCP connection.
#[derive(Debug)]
pub struct TcpReceiver {
    config: TcpConfig,
    flow: FlowId,
    /// Next expected in-order segment.
    expected: u64,
    /// Out-of-order segments beyond `expected`.
    ooo: BTreeSet<u64>,
    unacked_inorder: u32,
    delack_generation: u64,
    delack_armed: bool,
    duplicates: u64,
}

impl TcpReceiver {
    /// Creates a receiver for `flow`.
    pub fn new(flow: FlowId, config: TcpConfig) -> Self {
        TcpReceiver {
            config,
            flow,
            expected: 0,
            ooo: BTreeSet::new(),
            unacked_inorder: 0,
            delack_generation: 0,
            delack_armed: false,
            duplicates: 0,
        }
    }

    /// The flow this receiver belongs to.
    pub fn flow(&self) -> FlowId {
        self.flow
    }

    /// Segments received in order so far (goodput in MSS units).
    pub fn contiguous_segments(&self) -> u64 {
        self.expected
    }

    /// Goodput in bytes.
    pub fn goodput_bytes(&self) -> u64 {
        self.expected * self.config.mss
    }

    /// Duplicate segments seen (retransmissions that had already
    /// arrived).
    pub fn duplicates(&self) -> u64 {
        self.duplicates
    }

    /// The wire packet for a cumulative ACK.
    pub fn ack_packet(&self, ack_seq: u64) -> Packet {
        Packet {
            flow: self.flow,
            kind: PacketKind::TcpAck { ack_seq },
            bytes: self.config.ack_bytes,
        }
    }

    fn ack_now(&mut self, effects: &mut Vec<ReceiverEffect>) {
        self.unacked_inorder = 0;
        self.delack_armed = false;
        self.delack_generation += 1;
        effects.push(ReceiverEffect::SendAck {
            ack_seq: self.expected,
        });
    }

    /// Processes an arriving data segment.
    pub fn on_data(&mut self, now: SimTime, seq: u64) -> Vec<ReceiverEffect> {
        let mut effects = Vec::new();
        if seq < self.expected || self.ooo.contains(&seq) {
            // Duplicate: re-ack immediately.
            self.duplicates += 1;
            self.ack_now(&mut effects);
        } else if seq == self.expected {
            self.expected += 1;
            let mut drained = 0u64;
            while self.ooo.remove(&self.expected) {
                self.expected += 1;
                drained += 1;
            }
            self.unacked_inorder += 1;
            if drained > 0
                || !self.ooo.is_empty()
                || self.unacked_inorder >= self.config.delack_segments
            {
                // A hole was just filled (ack immediately per RFC 5681),
                // a hole remains beyond (keep the dupack clock running),
                // or the delayed-ack segment count was reached.
                self.ack_now(&mut effects);
            } else if !self.delack_armed {
                self.delack_armed = true;
                self.delack_generation += 1;
                effects.push(ReceiverEffect::ArmDelAck {
                    at: now + self.config.delack_timeout,
                    generation: self.delack_generation,
                });
            }
        } else {
            // Hole: buffer and send an immediate duplicate ACK.
            self.ooo.insert(seq);
            self.duplicates += 0;
            self.ack_now(&mut effects);
        }
        effects
    }

    /// Handles a delayed-ACK timer expiry.
    pub fn on_delack_fired(&mut self, generation: u64) -> Vec<ReceiverEffect> {
        let mut effects = Vec::new();
        if self.delack_armed && generation == self.delack_generation && self.unacked_inorder > 0 {
            self.ack_now(&mut effects);
        }
        effects
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> TcpConfig {
        TcpConfig::default()
    }

    #[test]
    fn sender_initial_window() {
        let mut s = TcpSender::new(FlowId(0), cfg(), None, None);
        let mut fx = Vec::new();
        let p1 = s.poll_packet(SimTime::ZERO, &mut fx).unwrap();
        let p2 = s.poll_packet(SimTime::ZERO, &mut fx).unwrap();
        assert_eq!(p1.kind, PacketKind::TcpData { seq: 0 });
        assert_eq!(p2.kind, PacketKind::TcpData { seq: 1 });
        // init_cwnd = 2 → third poll blocked.
        assert!(s.poll_packet(SimTime::ZERO, &mut fx).is_none());
        assert_eq!(s.flight(), 2);
        // The first poll armed the RTO.
        assert!(matches!(fx[0], SenderEffect::ArmRto { .. }));
    }

    #[test]
    fn slow_start_doubles_per_ack() {
        let mut s = TcpSender::new(FlowId(0), cfg(), None, None);
        let mut fx = Vec::new();
        while s.poll_packet(SimTime::ZERO, &mut fx).is_some() {}
        let t = SimTime::from_millis(10);
        s.on_ack(t, 1, &mut fx);
        assert_eq!(s.cwnd(), 3.0);
        s.on_ack(t, 2, &mut fx);
        assert_eq!(s.cwnd(), 4.0);
    }

    #[test]
    fn congestion_avoidance_grows_slowly() {
        let mut s = TcpSender::new(FlowId(0), cfg(), None, None);
        s.ssthresh = 2.0; // force CA immediately
        let mut fx = Vec::new();
        while s.poll_packet(SimTime::ZERO, &mut fx).is_some() {}
        s.on_ack(SimTime::from_millis(5), 1, &mut fx);
        assert!((s.cwnd() - 2.5).abs() < 1e-9, "cwnd={}", s.cwnd());
    }

    #[test]
    fn triple_dupack_triggers_fast_retransmit() {
        let mut s = TcpSender::new(FlowId(0), cfg(), None, None);
        s.cwnd = 10.0;
        let mut fx = Vec::new();
        for _ in 0..10 {
            s.poll_packet(SimTime::ZERO, &mut fx).unwrap();
        }
        let t = SimTime::from_millis(20);
        // Segment 0 lost; acks for 1..=3 arrive as dupacks of 0.
        s.on_ack(t, 0, &mut fx);
        s.on_ack(t, 0, &mut fx);
        assert!(s.recovery.is_none());
        s.on_ack(t, 0, &mut fx);
        assert!(s.recovery.is_some());
        let (_, retx_before, _) = s.stats();
        assert_eq!(retx_before, 0);
        let p = s.poll_packet(t, &mut fx).unwrap();
        assert_eq!(p.kind, PacketKind::TcpData { seq: 0 }); // the hole
        let (_, retx, _) = s.stats();
        assert_eq!(retx, 1);
        // Full ack exits recovery and deflates to ssthresh.
        s.on_ack(SimTime::from_millis(30), 10, &mut fx);
        assert!(s.recovery.is_none());
        assert_eq!(s.cwnd(), s.ssthresh);
    }

    #[test]
    fn newreno_partial_ack_retransmits_next_hole() {
        // Two losses in one window: the partial ack that covers the
        // first hole must immediately queue a retransmission of the
        // second without leaving fast recovery.
        let mut s = TcpSender::new(FlowId(0), cfg(), None, None);
        s.cwnd = 12.0;
        let mut fx = Vec::new();
        for _ in 0..12 {
            s.poll_packet(SimTime::ZERO, &mut fx).unwrap();
        }
        let t = SimTime::from_millis(20);
        // Segments 0 and 5 lost: dupacks of 0 arrive.
        for _ in 0..3 {
            s.on_ack(t, 0, &mut fx);
        }
        assert!(s.recovery.is_some());
        let p = s.poll_packet(t, &mut fx).unwrap();
        assert_eq!(p.kind, PacketKind::TcpData { seq: 0 });
        // Retransmitted 0 arrives; receiver acks up to the second hole.
        s.on_ack(SimTime::from_millis(30), 5, &mut fx);
        assert!(s.recovery.is_some(), "partial ack must stay in recovery");
        let p = s.poll_packet(SimTime::from_millis(30), &mut fx).unwrap();
        assert_eq!(
            p.kind,
            PacketKind::TcpData { seq: 5 },
            "partial ack retransmits the next hole"
        );
        // Full ack ends recovery.
        s.on_ack(SimTime::from_millis(40), 12, &mut fx);
        assert!(s.recovery.is_none());
    }

    #[test]
    fn cumulative_ack_jump_clears_retransmit_queue() {
        // An ack that leaps past queued retransmissions must drop them
        // (they are no longer needed).
        let mut s = TcpSender::new(FlowId(0), cfg(), None, None);
        s.cwnd = 10.0;
        let mut fx = Vec::new();
        for _ in 0..10 {
            s.poll_packet(SimTime::ZERO, &mut fx).unwrap();
        }
        let t = SimTime::from_millis(5);
        for _ in 0..3 {
            s.on_ack(t, 0, &mut fx); // fast retransmit queues seq 0
        }
        // Before the retransmission is polled, everything gets acked.
        s.on_ack(SimTime::from_millis(6), 10, &mut fx);
        let p = s.poll_packet(SimTime::from_millis(6), &mut fx);
        // Whatever is sent next must be new data, not a stale retx.
        if let Some(pkt) = p {
            assert_eq!(pkt.kind, PacketKind::TcpData { seq: 10 });
        }
    }

    #[test]
    fn rto_collapses_window_and_goes_back_n() {
        let mut s = TcpSender::new(FlowId(0), cfg(), None, None);
        s.cwnd = 8.0;
        let mut fx = Vec::new();
        for _ in 0..8 {
            s.poll_packet(SimTime::ZERO, &mut fx).unwrap();
        }
        let arm = fx
            .iter()
            .find_map(|e| match e {
                SenderEffect::ArmRto { at, generation } => Some((*at, *generation)),
                _ => None,
            })
            .unwrap();
        fx.clear();
        s.on_rto_fired(arm.0, arm.1, &mut fx);
        assert_eq!(s.cwnd(), 1.0);
        assert_eq!(s.flight(), 0);
        let (_, _, timeouts) = s.stats();
        assert_eq!(timeouts, 1);
        // Next emission re-sends segment 0 and is counted a retransmit.
        let p = s.poll_packet(arm.0, &mut fx).unwrap();
        assert_eq!(p.kind, PacketKind::TcpData { seq: 0 });
        let (_, retx, _) = s.stats();
        assert_eq!(retx, 1);
    }

    #[test]
    fn stale_rto_generation_is_ignored() {
        let mut s = TcpSender::new(FlowId(0), cfg(), None, None);
        let mut fx = Vec::new();
        s.poll_packet(SimTime::ZERO, &mut fx).unwrap();
        // An ack re-arms with a newer generation.
        s.poll_packet(SimTime::ZERO, &mut fx).unwrap();
        s.on_ack(SimTime::from_millis(1), 1, &mut fx);
        s.on_rto_fired(SimTime::from_secs(2), 1, &mut fx); // stale gen
        let (_, _, timeouts) = s.stats();
        assert_eq!(timeouts, 0);
    }

    #[test]
    fn task_completion_fires_once() {
        let c = cfg();
        let mss = c.mss;
        let mut s = TcpSender::new(FlowId(0), c, Some(3 * mss), None);
        let mut fx = Vec::new();
        for _ in 0..2 {
            s.poll_packet(SimTime::ZERO, &mut fx).unwrap();
        }
        s.on_ack(SimTime::from_millis(1), 2, &mut fx);
        s.poll_packet(SimTime::from_millis(1), &mut fx).unwrap();
        assert!(s.poll_packet(SimTime::from_millis(1), &mut fx).is_none());
        fx.clear();
        s.on_ack(SimTime::from_millis(2), 3, &mut fx);
        assert!(fx.contains(&SenderEffect::Complete));
        assert!(s.is_complete());
        assert_eq!(s.acked_bytes(), 3 * mss);
        // No further sends after completion.
        assert!(s.poll_packet(SimTime::from_millis(3), &mut fx).is_none());
    }

    #[test]
    fn app_limit_blocks_and_predicts_readiness() {
        let c = cfg();
        // 1 MSS per 100 ms.
        let lim = RateLimiter::new(c.mss as f64 * 8.0 * 10.0, c.mss);
        let mut s = TcpSender::new(FlowId(0), c, None, Some(lim));
        let mut fx = Vec::new();
        assert!(s.poll_packet(SimTime::ZERO, &mut fx).is_some());
        assert!(s.poll_packet(SimTime::ZERO, &mut fx).is_none());
        let ready = s.next_app_ready(SimTime::ZERO).unwrap();
        assert_eq!(ready, SimTime::from_millis(100));
        assert!(s.poll_packet(ready, &mut fx).is_some());
    }

    #[test]
    fn receiver_delays_acks_every_second_segment() {
        let mut r = TcpReceiver::new(FlowId(0), cfg());
        let fx = r.on_data(SimTime::ZERO, 0);
        assert!(matches!(fx[0], ReceiverEffect::ArmDelAck { .. }));
        let fx = r.on_data(SimTime::ZERO, 1);
        assert_eq!(fx, vec![ReceiverEffect::SendAck { ack_seq: 2 }]);
        assert_eq!(r.contiguous_segments(), 2);
    }

    #[test]
    fn receiver_delack_timer_flushes() {
        let mut r = TcpReceiver::new(FlowId(0), cfg());
        let fx = r.on_data(SimTime::ZERO, 0);
        let generation = match fx[0] {
            ReceiverEffect::ArmDelAck { generation, .. } => generation,
            _ => panic!("expected delack arm"),
        };
        let fx = r.on_delack_fired(generation);
        assert_eq!(fx, vec![ReceiverEffect::SendAck { ack_seq: 1 }]);
        // Stale timer does nothing.
        assert!(r.on_delack_fired(generation).is_empty());
    }

    #[test]
    fn receiver_dupacks_on_hole_and_heals() {
        let mut r = TcpReceiver::new(FlowId(0), cfg());
        let fx = r.on_data(SimTime::ZERO, 0);
        assert!(matches!(fx[0], ReceiverEffect::ArmDelAck { .. }));
        // Segment 1 lost; 2 and 3 arrive → immediate dupacks of 1.
        let fx = r.on_data(SimTime::ZERO, 2);
        assert_eq!(fx, vec![ReceiverEffect::SendAck { ack_seq: 1 }]);
        let fx = r.on_data(SimTime::ZERO, 3);
        assert_eq!(fx, vec![ReceiverEffect::SendAck { ack_seq: 1 }]);
        // Retransmission of 1 heals through the buffer.
        let fx = r.on_data(SimTime::ZERO, 1);
        assert_eq!(fx, vec![ReceiverEffect::SendAck { ack_seq: 4 }]);
        assert_eq!(r.contiguous_segments(), 4);
    }

    #[test]
    fn receiver_reacks_duplicates() {
        let mut r = TcpReceiver::new(FlowId(0), cfg());
        r.on_data(SimTime::ZERO, 0);
        r.on_data(SimTime::ZERO, 1);
        let fx = r.on_data(SimTime::ZERO, 0); // duplicate
        assert_eq!(fx, vec![ReceiverEffect::SendAck { ack_seq: 2 }]);
        assert_eq!(r.duplicates(), 1);
    }

    #[test]
    fn window_respects_max_cwnd() {
        let mut c = cfg();
        c.max_cwnd = 4.0;
        c.init_ssthresh = 100.0;
        let mut s = TcpSender::new(FlowId(0), c, None, None);
        let mut fx = Vec::new();
        // Grow cwnd well past the cap.
        for i in 0..50 {
            while s.poll_packet(SimTime::from_millis(i), &mut fx).is_some() {}
            let acked = s.next_seq;
            s.on_ack(SimTime::from_millis(i + 1), acked, &mut fx);
        }
        assert!(s.cwnd() <= 4.0);
        while s.poll_packet(SimTime::from_secs(1), &mut fx).is_some() {}
        assert!(s.flight() <= 4);
    }

    #[test]
    fn ack_beyond_next_seq_is_ignored() {
        let mut s = TcpSender::new(FlowId(0), cfg(), None, None);
        let mut fx = Vec::new();
        s.poll_packet(SimTime::ZERO, &mut fx).unwrap();
        s.on_ack(SimTime::from_millis(1), 50, &mut fx);
        assert_eq!(s.highest_acked, 0);
    }
}
