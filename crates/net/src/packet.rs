//! Network-layer packet types moved between transport endpoints.

/// Identifier of a flow (one per client node in the paper's setup, but
/// the types allow several flows per node).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct FlowId(pub usize);

impl FlowId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0
    }
}

impl std::fmt::Display for FlowId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "f{}", self.0)
    }
}

/// What a packet carries.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PacketKind {
    /// A TCP data segment with sequence number `seq` (in segments).
    TcpData {
        /// Segment sequence number.
        seq: u64,
    },
    /// A cumulative TCP acknowledgement: everything below `ack_seq` has
    /// been received in order.
    TcpAck {
        /// Next expected segment.
        ack_seq: u64,
    },
    /// A UDP datagram.
    UdpData {
        /// Datagram sequence number (measurement only).
        seq: u64,
    },
}

/// A network-layer packet (an IP datagram in the paper's terms).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Packet {
    /// Owning flow.
    pub flow: FlowId,
    /// Payload classification.
    pub kind: PacketKind,
    /// Total IP datagram size in bytes (headers included).
    pub bytes: u64,
}

impl Packet {
    /// True for TCP/UDP data (not acknowledgements).
    pub fn is_data(&self) -> bool {
        !matches!(self.kind, PacketKind::TcpAck { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification() {
        let d = Packet {
            flow: FlowId(0),
            kind: PacketKind::TcpData { seq: 3 },
            bytes: 1500,
        };
        let a = Packet {
            flow: FlowId(0),
            kind: PacketKind::TcpAck { ack_seq: 4 },
            bytes: 40,
        };
        let u = Packet {
            flow: FlowId(1),
            kind: PacketKind::UdpData { seq: 9 },
            bytes: 1500,
        };
        assert!(d.is_data());
        assert!(!a.is_data());
        assert!(u.is_data());
    }

    #[test]
    fn display() {
        assert_eq!(FlowId(4).to_string(), "f4");
        assert_eq!(FlowId(4).index(), 4);
    }
}
