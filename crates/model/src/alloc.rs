//! Equations 4–13: channel-time and throughput allocations under the
//! two fairness notions.

/// One competing node, described by its baseline throughput γᵢ (Mbit/s,
/// from measurement or a [`crate::gamma`] model) and its packet size sᵢ
/// (bytes). The equations only ever see γ and s.
#[derive(Clone, Copy, Debug)]
pub struct NodeSpec {
    /// Baseline throughput γ(dᵢ, sᵢ, I) in Mbit/s.
    pub gamma: f64,
    /// Data packet size in bytes.
    pub packet_bytes: f64,
}

impl NodeSpec {
    /// A node with γ in Mbit/s and 1500-byte packets.
    pub fn with_gamma(gamma: f64) -> Self {
        NodeSpec {
            gamma,
            packet_bytes: 1500.0,
        }
    }
}

/// A predicted allocation: per-node channel-occupancy fractions T(i),
/// per-node throughputs R(i) in Mbit/s, and the aggregate R(I).
#[derive(Clone, Debug)]
pub struct Allocation {
    /// Channel occupancy time fractions; sums to 1 (Eq 1).
    pub occupancy: Vec<f64>,
    /// Per-node throughput in Mbit/s.
    pub throughput: Vec<f64>,
    /// Aggregate throughput (Eq 3).
    pub total: f64,
}

/// Throughput-based fairness — what DCF plus conventional AP queuing
/// yields (Eq 4: `T(i) ∝ sᵢ/γᵢ`; Eq 2: `R(i) = T(i)·γᵢ`). With equal
/// packet sizes this reduces to Eqs 5–7 (equal throughputs); with mixed
/// packet sizes to Eqs 8–10.
///
/// # Panics
///
/// Panics if `nodes` is empty or any γ or packet size is non-positive.
pub fn rf_allocation(nodes: &[NodeSpec]) -> Allocation {
    validate(nodes);
    let denom: f64 = nodes.iter().map(|n| n.packet_bytes / n.gamma).sum();
    let occupancy: Vec<f64> = nodes
        .iter()
        .map(|n| (n.packet_bytes / n.gamma) / denom)
        .collect();
    finish(nodes, occupancy)
}

/// Time-based fairness — the paper's proposal (Eq 11: `T(i) = 1/n`;
/// Eq 12: `R(i) = γᵢ/n`; Eq 13: `R(I) = Σγᵢ/n`).
///
/// # Panics
///
/// Panics if `nodes` is empty or any γ or packet size is non-positive.
pub fn tf_allocation(nodes: &[NodeSpec]) -> Allocation {
    validate(nodes);
    let n = nodes.len() as f64;
    finish(nodes, vec![1.0 / n; nodes.len()])
}

/// Weighted time-based fairness (§4.5's QoS extension): `T(i) ∝ wᵢ`.
///
/// # Panics
///
/// Panics on empty input, non-positive γ/s, or non-positive weights.
pub fn tf_allocation_weighted(nodes: &[NodeSpec], weights: &[f64]) -> Allocation {
    validate(nodes);
    assert_eq!(nodes.len(), weights.len(), "one weight per node");
    assert!(weights.iter().all(|&w| w > 0.0), "weights must be positive");
    let total_w: f64 = weights.iter().sum();
    finish(nodes, weights.iter().map(|&w| w / total_w).collect())
}

fn validate(nodes: &[NodeSpec]) {
    assert!(!nodes.is_empty(), "at least one node");
    assert!(
        nodes.iter().all(|n| n.gamma > 0.0 && n.packet_bytes > 0.0),
        "γ and packet size must be positive"
    );
}

fn finish(nodes: &[NodeSpec], occupancy: Vec<f64>) -> Allocation {
    let throughput: Vec<f64> = nodes
        .iter()
        .zip(&occupancy)
        .map(|(n, &t)| t * n.gamma)
        .collect();
    let total = throughput.iter().sum();
    Allocation {
        occupancy,
        throughput,
        total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gamma::gamma_measured;
    use airtime_phy::DataRate;

    fn node(rate: DataRate) -> NodeSpec {
        NodeSpec::with_gamma(gamma_measured(rate).unwrap())
    }

    #[test]
    fn equal_rates_make_notions_coincide() {
        let nodes = [node(DataRate::B11), node(DataRate::B11)];
        let rf = rf_allocation(&nodes);
        let tf = tf_allocation(&nodes);
        for i in 0..2 {
            assert!((rf.occupancy[i] - tf.occupancy[i]).abs() < 1e-12);
            assert!((rf.throughput[i] - tf.throughput[i]).abs() < 1e-12);
        }
        assert!((rf.total - 5.189).abs() < 1e-9);
    }

    #[test]
    fn figure2_prediction_1vs11() {
        // 1 vs 11 Mbit/s under DCF: equal throughputs ≈ 0.70 Mbit/s
        // each, and the slow node holds ≈6.4× the fast node's airtime —
        // the numbers in the paper's Figure 2.
        let nodes = [node(DataRate::B11), node(DataRate::B1)];
        let rf = rf_allocation(&nodes);
        assert!((rf.throughput[0] - rf.throughput[1]).abs() < 1e-9);
        assert!(
            (rf.throughput[0] - 0.698).abs() < 0.01,
            "per-node {}",
            rf.throughput[0]
        );
        let ratio = rf.occupancy[1] / rf.occupancy[0];
        assert!((6.3..6.6).contains(&ratio), "occupancy ratio {ratio}");
        assert!((rf.total - 1.395).abs() < 0.01);
    }

    #[test]
    fn table3_rf_row() {
        // Four nodes at 1, 2, 11, 11 Mbit/s: RF gives 0.436 each,
        // 1.742 total.
        let nodes = [
            node(DataRate::B1),
            node(DataRate::B2),
            node(DataRate::B11),
            node(DataRate::B11),
        ];
        let rf = rf_allocation(&nodes);
        for r in &rf.throughput {
            assert!((r - 0.436).abs() < 0.001, "r={r}");
        }
        assert!((rf.total - 1.742).abs() < 0.005, "total={}", rf.total);
    }

    #[test]
    fn table3_tf_row() {
        // Same four nodes under TF: 0.202, 0.373, 1.297, 1.297 → 3.17
        // total, an 82% improvement over RF.
        let nodes = [
            node(DataRate::B1),
            node(DataRate::B2),
            node(DataRate::B11),
            node(DataRate::B11),
        ];
        let tf = tf_allocation(&nodes);
        assert!((tf.throughput[0] - 0.2015).abs() < 0.001);
        assert!((tf.throughput[1] - 0.3733).abs() < 0.001);
        assert!((tf.throughput[2] - 1.2973).abs() < 0.001);
        assert!((tf.total - 3.175).abs() < 0.01, "total={}", tf.total);
        let rf = rf_allocation(&nodes);
        let gain = tf.total / rf.total - 1.0;
        assert!((0.80..0.85).contains(&gain), "gain={gain}");
    }

    #[test]
    fn baseline_property_holds_under_tf() {
        // A 1 Mbit/s node competing against any mix gets exactly what it
        // would get in an all-1 Mbit/s cell of the same size (Eq 12
        // depends only on its own γ and n).
        let g1 = gamma_measured(DataRate::B1).unwrap();
        let mixed = [
            node(DataRate::B1),
            node(DataRate::B11),
            node(DataRate::B5_5),
        ];
        let all_slow = [node(DataRate::B1); 3];
        let tf_mixed = tf_allocation(&mixed);
        let tf_slow = tf_allocation(&all_slow);
        assert!((tf_mixed.throughput[0] - g1 / 3.0).abs() < 1e-12);
        assert!((tf_mixed.throughput[0] - tf_slow.throughput[0]).abs() < 1e-12);
    }

    #[test]
    fn packet_size_diversity_rf_eq8_to_10() {
        // Same rate, different packet sizes: T(i) and R(i) now differ
        // across nodes (Eqs 8–9): the big-packet node gets more bytes
        // through.
        let g = 5.0;
        let nodes = [
            NodeSpec {
                gamma: g,
                packet_bytes: 1500.0,
            },
            NodeSpec {
                gamma: g,
                packet_bytes: 500.0,
            },
        ];
        let rf = rf_allocation(&nodes);
        assert!(rf.occupancy[0] > rf.occupancy[1]);
        let r_ratio = rf.throughput[0] / rf.throughput[1];
        assert!((r_ratio - 3.0).abs() < 1e-9, "ratio {r_ratio}");
        // Eq 10: R(I) = Σsᵢ / Σ(sⱼ/γⱼ).
        let expect_total = (1500.0 + 500.0) / (1500.0 / g + 500.0 / g);
        assert!((rf.total - expect_total).abs() < 1e-9);
    }

    #[test]
    fn occupancies_always_sum_to_one() {
        let nodes = [
            node(DataRate::B1),
            node(DataRate::B2),
            node(DataRate::B5_5),
            node(DataRate::B11),
        ];
        for alloc in [rf_allocation(&nodes), tf_allocation(&nodes)] {
            let sum: f64 = alloc.occupancy.iter().sum();
            assert!((sum - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn weighted_tf_scales_with_weights() {
        let nodes = [node(DataRate::B11), node(DataRate::B11)];
        let a = tf_allocation_weighted(&nodes, &[3.0, 1.0]);
        assert!((a.occupancy[0] - 0.75).abs() < 1e-12);
        assert!((a.throughput[0] / a.throughput[1] - 3.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn empty_nodes_panic() {
        let _ = rf_allocation(&[]);
    }
}
