//! Baseline throughput γ(d, s, I).
//!
//! γ is "the maximum total achieved throughput when all nodes use the
//! same packet size and data rate under similar loss characteristics"
//! (§2.3). The paper obtains it experimentally (their Table 2); we
//! provide those measured values plus closed-form DCF cycle models so
//! predictions can be made for configurations the paper never measured.

use airtime_phy::{DataRate, Phy80211b};

/// The paper's Table 2: measured total TCP throughput (Mbit/s) of two
/// nodes exchanging 1500-byte packets at the same rate, <2% loss.
///
/// Returns `None` for 802.11g rates (outside the paper's testbed).
pub fn gamma_measured(rate: DataRate) -> Option<f64> {
    match rate {
        DataRate::B11 => Some(5.189),
        DataRate::B5_5 => Some(3.327),
        DataRate::B2 => Some(1.493),
        DataRate::B1 => Some(0.806),
        _ => None,
    }
}

/// Expected idle backoff time preceding each transmission when `n`
/// saturated stations contend: ≈ slot × CWmin / (n + 1) (the expected
/// minimum of n uniform draws on [0, CWmin]).
fn idle_per_tx(phy: &Phy80211b, n: usize) -> f64 {
    phy.slot.as_secs_f64() * phy.cw_min as f64 / (n as f64 + 1.0)
}

/// Closed-form saturation goodput (Mbit/s) for `n` stations sending
/// `msdu_bytes` UDP datagrams at `rate`: payload bits over the mean
/// per-packet cycle (DIFS + DATA + SIFS + ACK + expected idle backoff).
/// Collisions are neglected (fine for the paper's 2–4 stations).
pub fn gamma_udp_model(phy: &Phy80211b, rate: DataRate, msdu_bytes: u64, n: usize) -> f64 {
    let cycle = phy.exchange_time(msdu_bytes, rate).as_secs_f64() + idle_per_tx(phy, n);
    msdu_bytes as f64 * 8.0 / cycle / 1e6
}

/// Closed-form saturation **TCP goodput** (Mbit/s): each MSS costs one
/// data exchange, half an ack exchange (delayed acks), and 1.5 expected
/// idle backoffs. `ip_bytes` is the data packet on the wire (1500),
/// `mss` the payload counted as goodput (1460), `ack_bytes` the pure
/// ack (40).
pub fn gamma_tcp_model(
    phy: &Phy80211b,
    rate: DataRate,
    ip_bytes: u64,
    mss: u64,
    ack_bytes: u64,
    n: usize,
) -> f64 {
    let idle = idle_per_tx(phy, n.max(2));
    let cycle = phy.exchange_time(ip_bytes, rate).as_secs_f64()
        + 0.5 * phy.exchange_time(ack_bytes, rate).as_secs_f64()
        + 1.5 * idle;
    mss as f64 * 8.0 / cycle / 1e6
}

/// Convenience: the analytic counterpart of the paper's Table 2
/// (2 nodes, 1500-byte packets, TCP with 1460-byte MSS).
pub fn gamma_tcp_table2(rate: DataRate) -> f64 {
    gamma_tcp_model(&Phy80211b::default(), rate, 1500, 1460, 40, 2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measured_values_match_paper() {
        assert_eq!(gamma_measured(DataRate::B11), Some(5.189));
        assert_eq!(gamma_measured(DataRate::B5_5), Some(3.327));
        assert_eq!(gamma_measured(DataRate::B2), Some(1.493));
        assert_eq!(gamma_measured(DataRate::B1), Some(0.806));
        assert_eq!(gamma_measured(DataRate::G54), None);
    }

    #[test]
    fn tcp_model_tracks_measured_table2_within_10_percent() {
        for rate in DataRate::ALL_B {
            let model = gamma_tcp_table2(rate);
            let measured = gamma_measured(rate).unwrap();
            let err = (model - measured).abs() / measured;
            assert!(
                err < 0.10,
                "{rate}: model {model:.3} vs measured {measured:.3} ({:.1}%)",
                err * 100.0
            );
        }
    }

    #[test]
    fn udp_exceeds_tcp_at_same_rate() {
        let phy = Phy80211b::default();
        for rate in DataRate::ALL_B {
            let udp = gamma_udp_model(&phy, rate, 1500, 2);
            let tcp = gamma_tcp_table2(rate);
            assert!(udp > tcp, "{rate}: udp {udp} tcp {tcp}");
        }
    }

    #[test]
    fn gamma_monotone_in_rate_and_size() {
        let phy = Phy80211b::default();
        for pair in DataRate::ALL_B.windows(2) {
            assert!(
                gamma_udp_model(&phy, pair[0], 1500, 2) < gamma_udp_model(&phy, pair[1], 1500, 2)
            );
        }
        // Larger packets amortise overhead (§2.3): γ grows with s.
        assert!(
            gamma_udp_model(&phy, DataRate::B11, 1500, 2)
                > gamma_udp_model(&phy, DataRate::B11, 256, 2)
        );
    }

    #[test]
    fn more_stations_less_idle_higher_gamma() {
        // The paper notes (Fig 4 discussion) that backoff overhead per
        // packet shrinks as contenders increase.
        let phy = Phy80211b::default();
        let g1 = gamma_udp_model(&phy, DataRate::B11, 1500, 1);
        let g3 = gamma_udp_model(&phy, DataRate::B11, 1500, 3);
        assert!(g3 > g1, "g1={g1} g3={g3}");
    }

    #[test]
    fn solo_udp_saturation_ground_truth() {
        // The classic "~6 Mbit/s from one 802.11b sender" number.
        let phy = Phy80211b::default();
        let g = gamma_udp_model(&phy, DataRate::B11, 1500, 1);
        assert!((5.9..6.5).contains(&g), "g={g}");
    }
}
