//! The task traffic model (§2.1, after Bruno, Coffman & Sethi).
//!
//! Each node transfers a finite number of bytes; when a task finishes,
//! the channel is re-divided among the remainder. The fluid scheduler
//! here reproduces Table 1's claims exactly: *FinalTaskTime* is
//! identical under both fairness notions (the network is
//! work-conserving either way, and total channel time is Σ Bᵢ/γᵢ no
//! matter the order), while *AvgTaskTime* is strictly better under
//! time-based fairness whenever rates diverge, because fast nodes
//! finish early instead of being held to the convoy.

use crate::alloc::{rf_allocation, tf_allocation, NodeSpec};

/// Which fairness notion divides the channel.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FairnessPolicy {
    /// Throughput-based fairness (DCF + conventional queuing).
    ThroughputFair,
    /// Time-based fairness (TBR).
    TimeFair,
}

/// Result of running a task mix to completion.
#[derive(Clone, Debug)]
pub struct TaskOutcome {
    /// Per-node completion times, seconds, in input order.
    pub completion_times: Vec<f64>,
    /// Mean completion time (the paper's AvgTaskTime).
    pub avg_task_time: f64,
    /// Last completion (FinalTaskTime).
    pub final_task_time: f64,
}

/// Runs the fluid task model: `nodes[i]` transfers `task_bytes[i]`
/// bytes; throughputs follow the policy's allocation over the *still
/// active* node set and are recomputed at each completion.
///
/// # Panics
///
/// Panics if lengths differ, the input is empty, or any task size is
/// non-positive.
pub fn task_schedule(
    nodes: &[NodeSpec],
    task_bytes: &[f64],
    policy: FairnessPolicy,
) -> TaskOutcome {
    assert_eq!(nodes.len(), task_bytes.len(), "one task per node");
    assert!(!nodes.is_empty(), "at least one task");
    assert!(
        task_bytes.iter().all(|&b| b > 0.0),
        "tasks must be non-empty"
    );
    let n = nodes.len();
    let mut remaining: Vec<f64> = task_bytes.to_vec();
    let mut active: Vec<usize> = (0..n).collect();
    let mut completion = vec![0.0f64; n];
    let mut now = 0.0f64;
    while !active.is_empty() {
        let specs: Vec<NodeSpec> = active.iter().map(|&i| nodes[i]).collect();
        let alloc = match policy {
            FairnessPolicy::ThroughputFair => rf_allocation(&specs),
            FairnessPolicy::TimeFair => tf_allocation(&specs),
        };
        // Rates in bytes/s (γ is Mbit/s).
        let rates: Vec<f64> = alloc
            .throughput
            .iter()
            .map(|mbps| mbps * 1e6 / 8.0)
            .collect();
        // Time until the earliest completion among active tasks.
        let (k, dt) = active
            .iter()
            .enumerate()
            .map(|(k, &i)| (k, remaining[i] / rates[k]))
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .expect("non-empty active set");
        now += dt;
        for (k2, &i) in active.iter().enumerate() {
            remaining[i] -= rates[k2] * dt;
        }
        let finished = active[k];
        completion[finished] = now;
        remaining[finished] = 0.0;
        active.remove(k);
        // Sweep any simultaneous completions (identical specs/tasks).
        let mut k2 = 0;
        while k2 < active.len() {
            let i = active[k2];
            if remaining[i] <= 1e-9 {
                completion[i] = now;
                active.remove(k2);
            } else {
                k2 += 1;
            }
        }
    }
    let avg = completion.iter().sum::<f64>() / n as f64;
    let fin = completion.iter().fold(0.0f64, |a, &b| a.max(b));
    TaskOutcome {
        completion_times: completion,
        avg_task_time: avg,
        final_task_time: fin,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gamma::gamma_measured;
    use airtime_phy::DataRate;

    fn node(rate: DataRate) -> NodeSpec {
        NodeSpec::with_gamma(gamma_measured(rate).unwrap())
    }

    const MB: f64 = 1e6;

    #[test]
    fn equal_rate_tasks_tie_under_both_policies() {
        let nodes = [node(DataRate::B11), node(DataRate::B11)];
        let tasks = [10.0 * MB, 10.0 * MB];
        let rf = task_schedule(&nodes, &tasks, FairnessPolicy::ThroughputFair);
        let tf = task_schedule(&nodes, &tasks, FairnessPolicy::TimeFair);
        assert!((rf.final_task_time - tf.final_task_time).abs() < 1e-6);
        assert!((rf.avg_task_time - tf.avg_task_time).abs() < 1e-6);
        assert!((rf.completion_times[0] - rf.completion_times[1]).abs() < 1e-6);
    }

    #[test]
    fn table1_final_same_avg_better_under_tf() {
        // The 1vs11 task-model comparison behind Table 1.
        let nodes = [node(DataRate::B11), node(DataRate::B1)];
        let tasks = [10.0 * MB, 10.0 * MB];
        let rf = task_schedule(&nodes, &tasks, FairnessPolicy::ThroughputFair);
        let tf = task_schedule(&nodes, &tasks, FairnessPolicy::TimeFair);
        // FinalTaskTime: work conserving ⇒ identical (±numerics).
        let rel = (rf.final_task_time - tf.final_task_time).abs() / rf.final_task_time;
        assert!(
            rel < 1e-9,
            "final times differ: rf={} tf={}",
            rf.final_task_time,
            tf.final_task_time
        );
        // AvgTaskTime strictly better under TF.
        assert!(
            tf.avg_task_time < rf.avg_task_time * 0.75,
            "tf avg {} vs rf avg {}",
            tf.avg_task_time,
            rf.avg_task_time
        );
        // Under RF both tasks finish together (equal throughputs).
        assert!(
            (rf.completion_times[0] - rf.completion_times[1]).abs() / rf.final_task_time < 1e-9
        );
        // Under TF the fast node finishes much earlier.
        assert!(tf.completion_times[0] < 0.3 * tf.completion_times[1]);
    }

    #[test]
    fn final_time_equals_total_channel_time() {
        // FinalTaskTime = Σ Bᵢ/γᵢ under either policy, since occupancy
        // fractions sum to 1 and the channel never idles.
        let nodes = [node(DataRate::B11), node(DataRate::B2)];
        let tasks = [20.0 * MB, 5.0 * MB];
        let expect: f64 = tasks
            .iter()
            .zip(&nodes)
            .map(|(b, n)| b * 8.0 / (n.gamma * 1e6))
            .sum();
        for policy in [FairnessPolicy::ThroughputFair, FairnessPolicy::TimeFair] {
            let out = task_schedule(&nodes, &tasks, policy);
            assert!(
                (out.final_task_time - expect).abs() / expect < 1e-9,
                "{policy:?}: {} vs {expect}",
                out.final_task_time
            );
        }
    }

    #[test]
    fn slow_node_completion_unchanged_by_tf() {
        // Baseline property in task form: under TF the slow node's
        // completion time with a fast competitor equals its completion
        // time with a slow competitor of the same task size.
        let tasks = [10.0 * MB, 10.0 * MB];
        let mixed = [node(DataRate::B11), node(DataRate::B1)];
        let slow = [node(DataRate::B1), node(DataRate::B1)];
        let tf_mixed = task_schedule(&mixed, &tasks, FairnessPolicy::TimeFair);
        let tf_slow = task_schedule(&slow, &tasks, FairnessPolicy::TimeFair);
        // The slow node holds T=1/2 until the fast one finishes, then
        // gets the whole channel — so it can only do *better* than in
        // the all-slow cell; it must never do worse.
        assert!(tf_mixed.completion_times[1] <= tf_slow.completion_times[1] + 1e-9);
    }

    #[test]
    fn last_finisher_speeds_up_after_others_leave() {
        // Once the fast task completes under TF, the slow node's rate
        // rises from γ/2 to γ, so its completion beats the naive
        // "γ/2 the whole way" bound.
        let nodes = [node(DataRate::B11), node(DataRate::B1)];
        let tasks = [10.0 * MB, 10.0 * MB];
        let tf = task_schedule(&nodes, &tasks, FairnessPolicy::TimeFair);
        let g1 = gamma_measured(DataRate::B1).unwrap() * 1e6 / 8.0;
        let naive = tasks[1] / (g1 / 2.0);
        assert!(tf.completion_times[1] < naive);
    }

    #[test]
    fn three_way_mixed_ordering() {
        let nodes = [
            node(DataRate::B11),
            node(DataRate::B5_5),
            node(DataRate::B1),
        ];
        let tasks = [10.0 * MB; 3];
        let tf = task_schedule(&nodes, &tasks, FairnessPolicy::TimeFair);
        assert!(tf.completion_times[0] < tf.completion_times[1]);
        assert!(tf.completion_times[1] < tf.completion_times[2]);
        let rf = task_schedule(&nodes, &tasks, FairnessPolicy::ThroughputFair);
        assert!(tf.avg_task_time < rf.avg_task_time);
    }

    #[test]
    #[should_panic(expected = "tasks must be non-empty")]
    fn zero_task_panics() {
        let _ = task_schedule(&[node(DataRate::B11)], &[0.0], FairnessPolicy::TimeFair);
    }
}
