//! Bianchi's DCF saturation model (IEEE JSAC 2000), adapted to 802.11b.
//!
//! The paper's γ abstraction hides contention detail; Bianchi's
//! fixed-point model recovers it, giving collision-aware saturation
//! throughput for any number of stations. We use it to sanity-check the
//! simulator's collision rates and to extrapolate γ beyond the paper's
//! two-node measurements (their Table 2 is n = 2 only).
//!
//! Model: each saturated station transmits in a randomly chosen slot
//! with probability τ, where τ and the conditional collision
//! probability p satisfy
//!
//! ```text
//! τ = 2(1 − 2p) / ((1 − 2p)(W + 1) + p·W·(1 − (2p)^m))
//! p = 1 − (1 − τ)^(n−1)
//! ```
//!
//! with `W = CWmin + 1` and `m` backoff stages.

use airtime_phy::{DataRate, Phy80211b};

/// A solved Bianchi model instance.
#[derive(Clone, Copy, Debug)]
pub struct BianchiModel {
    /// Per-slot transmission probability of one station.
    pub tau: f64,
    /// Conditional collision probability seen by a transmitting station.
    pub p_collision: f64,
    /// Number of saturated stations.
    pub n: usize,
}

impl BianchiModel {
    /// Solves the fixed point for `n` saturated stations on `phy`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn solve(phy: &Phy80211b, n: usize) -> Self {
        assert!(n > 0, "need at least one station");
        let w = (phy.cw_min + 1) as f64;
        let m = ((phy.cw_max + 1) as f64 / w).log2().round().max(0.0);
        // Bisect on p: as p grows, τ(p) falls and p_implied(τ) falls, so
        // g(p) = p_implied(τ(p)) − p is decreasing — a clean root.
        let tau_of = |p: f64| -> f64 {
            2.0 * (1.0 - 2.0 * p)
                / ((1.0 - 2.0 * p) * (w + 1.0) + p * w * (1.0 - (2.0 * p).powf(m)))
        };
        if n == 1 {
            return BianchiModel {
                tau: tau_of(0.0),
                p_collision: 0.0,
                n,
            };
        }
        let g = |p: f64| -> f64 {
            let tau = tau_of(p);
            (1.0 - (1.0 - tau).powi(n as i32 - 1)) - p
        };
        let (mut lo, mut hi) = (0.0f64, 0.4999f64);
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if g(mid) > 0.0 {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        let p = 0.5 * (lo + hi);
        BianchiModel {
            tau: tau_of(p),
            p_collision: p,
            n,
        }
    }

    /// Saturation goodput in Mbit/s for `msdu_bytes` UDP payloads at
    /// `rate`.
    pub fn throughput_mbps(&self, phy: &Phy80211b, rate: DataRate, msdu_bytes: u64) -> f64 {
        let n = self.n as f64;
        let tau = self.tau;
        let p_tr = 1.0 - (1.0 - tau).powf(n);
        if p_tr <= 0.0 {
            return 0.0;
        }
        let p_s = n * tau * (1.0 - tau).powf(n - 1.0) / p_tr;
        let sigma = phy.slot.as_secs_f64();
        let t_s = phy.exchange_time(msdu_bytes, rate).as_secs_f64();
        let t_c = phy.difs().as_secs_f64()
            + phy.data_tx_time_default(msdu_bytes, rate).as_secs_f64()
            + phy.sifs.as_secs_f64()
            + phy.ack_tx_time(rate).as_secs_f64();
        let payload_bits = msdu_bytes as f64 * 8.0;
        let num = p_s * p_tr * payload_bits;
        let den = (1.0 - p_tr) * sigma + p_tr * p_s * t_s + p_tr * (1.0 - p_s) * t_c;
        num / den / 1e6
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gamma::gamma_udp_model;

    fn phy() -> Phy80211b {
        Phy80211b::default()
    }

    #[test]
    fn solo_station_never_collides() {
        let m = BianchiModel::solve(&phy(), 1);
        assert_eq!(m.p_collision, 0.0);
        assert!(m.tau > 0.0 && m.tau < 1.0);
    }

    #[test]
    fn collision_probability_grows_with_n() {
        let mut prev = 0.0;
        for n in 2..=20 {
            let m = BianchiModel::solve(&phy(), n);
            assert!(m.p_collision > prev, "n={n}");
            assert!(m.p_collision < 0.5);
            prev = m.p_collision;
        }
    }

    #[test]
    fn tau_shrinks_with_n() {
        let mut prev = f64::INFINITY;
        for n in 1..=20 {
            let m = BianchiModel::solve(&phy(), n);
            assert!(m.tau < prev, "n={n}");
            prev = m.tau;
        }
    }

    #[test]
    fn fixed_point_is_consistent() {
        for n in 2..=10 {
            let m = BianchiModel::solve(&phy(), n);
            let implied = 1.0 - (1.0 - m.tau).powi(n as i32 - 1);
            assert!(
                (implied - m.p_collision).abs() < 1e-6,
                "n={n}: implied {implied} vs {}",
                m.p_collision
            );
        }
    }

    #[test]
    fn two_station_throughput_matches_simple_model() {
        // For small n collisions are rare, so Bianchi and the
        // collision-free cycle model should land close together.
        let m = BianchiModel::solve(&phy(), 2);
        let bianchi = m.throughput_mbps(&phy(), DataRate::B11, 1500);
        let simple = gamma_udp_model(&phy(), DataRate::B11, 1500, 2);
        let rel = (bianchi - simple).abs() / simple;
        assert!(rel < 0.10, "bianchi {bianchi} vs simple {simple}");
    }

    #[test]
    fn throughput_degrades_gracefully_with_contention() {
        let t2 = BianchiModel::solve(&phy(), 2).throughput_mbps(&phy(), DataRate::B11, 1500);
        let t30 = BianchiModel::solve(&phy(), 30).throughput_mbps(&phy(), DataRate::B11, 1500);
        assert!(t30 < t2, "t2={t2} t30={t30}");
        // But not catastrophically: DCF keeps most of the channel.
        assert!(t30 > 0.6 * t2, "t2={t2} t30={t30}");
    }

    #[test]
    fn throughput_scales_with_rate() {
        let m = BianchiModel::solve(&phy(), 3);
        let t1 = m.throughput_mbps(&phy(), DataRate::B1, 1500);
        let t11 = m.throughput_mbps(&phy(), DataRate::B11, 1500);
        assert!(t11 > 4.0 * t1, "t1={t1} t11={t11}");
    }
}
