//! The paper's analytic framework (§2).
//!
//! Everything the paper predicts follows from one abstraction: the
//! *baseline throughput* γ(d, s, I) — the total throughput a cell
//! achieves when all |I| nodes use data rate *d* and packet size *s* —
//! combined with how a fairness notion divides channel occupancy time
//! T(i) among nodes:
//!
//! - **Throughput-based fairness (RF)**, what DCF + a round-robin AP
//!   queue delivers: every node gets `R(i) = 1/Σ(1/γⱼ)` (Eq 6) and the
//!   slow nodes hog the air, `T(i) ∝ 1/γᵢ` (Eq 5).
//! - **Time-based fairness (TF)**, the paper's proposal: `T(i) = 1/n`
//!   (Eq 11), hence `R(i) = γᵢ/n` (Eq 12) — each node performs exactly
//!   as it would in a single-rate cell of its own speed (the *baseline
//!   property*).
//!
//! [`gamma`] supplies γ three ways: the paper's measured Table 2, a
//! closed-form DCF cycle model, and a Bianchi (2000)-style fixed-point
//! saturation model. [`alloc`] implements Equations 4–13 for arbitrary
//! rate and packet-size mixes. [`task`] is the fluid task-model
//! scheduler behind Table 1's AvgTaskTime / FinalTaskTime comparison.

pub mod alloc;
pub mod bianchi;
pub mod gamma;
pub mod task;

pub use alloc::{rf_allocation, tf_allocation, tf_allocation_weighted, Allocation, NodeSpec};
pub use bianchi::BianchiModel;
pub use gamma::{gamma_measured, gamma_tcp_model, gamma_tcp_table2, gamma_udp_model};
pub use task::{task_schedule, FairnessPolicy, TaskOutcome};
