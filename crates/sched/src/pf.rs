//! Proportional-fair downlink scheduling (the cellular classic).
//!
//! Patras et al. derive proportional-fair allocations for multi-rate
//! Wi-Fi; the mechanism itself is the canonical cellular PF loop (the
//! SNIPPETS.md 4G exemplar): serve the backlogged client maximising
//!
//! ```text
//!     priority_i = weight_i × R_i / T_i
//! ```
//!
//! where `R_i` is the client's *instantaneous achievable rate* and
//! `T_i` its **β-EWMA average allocated rate**, updated after every
//! service opportunity:
//!
//! ```text
//!     T_i ← (1 − β_eff)·T_i + β_eff·(served ? R_i : 0)
//! ```
//!
//! Cellular PF updates once per TTI, and because TTIs all last the same
//! time, averaging *per opportunity* equals averaging *per unit time*.
//! 802.11 exchanges do not: an 11 Mbit/s frame occupies ~1.6 ms, a
//! 1 Mbit/s frame ~12.9 ms. Averaging per opportunity would converge to
//! frame fairness (each client wins half the opportunities) — exactly
//! the throughput-fair anomaly the paper diagnoses. So the update is
//! time-weighted: `β_eff = 1 − (1 − β)^(Δt / 1 ms)` treats a Δt-long
//! exchange as Δt worth of 1 ms slots, making `T_i` a true *time*
//! average. The equilibrium is then `priority_i = w_i / airtime_share_i`
//! and equalising priorities equalises airtime — PF lands on the
//! paper's time-fair side of the ledger.
//!
//! Serving a client raises its average and lowers its future priority;
//! an unserved client's average decays toward zero and its priority
//! climbs until it wins — the argmax maximises `Σ log(throughput)`
//! long-term. A station the AP has never observed transmitting gets
//! infinite priority (it must be sampled before it can be compared),
//! with ties broken round-robin so cold starts stay fair.
//!
//! Embedded at an AP, `R_i` is not a channel-quality report: the
//! scheduler *measures* it as `bytes × 8 / airtime` of each completed
//! downlink exchange (the same COMPLETEEVENT feedback TBR debits tokens
//! with), lightly smoothed. Like TXOP grants, PF paces only what
//! the AP itself transmits — for uplink TCP the paced entities are the
//! acks, which throttle the sender by ack-clocking.
//!
//! Every update happens inside an event hook ([`PfScheduler::dequeue`]
//! / [`PfScheduler::on_complete`]): there are no timer ticks, so dense
//! and coalesced tick modes follow bit-identical trajectories and the
//! repo's determinism contract holds by construction.

use airtime_core::{ApScheduler, BufferPolicy, ClientId, EnqueueOutcome, QueuePool, QueuedPacket};
use airtime_sim::{SimDuration, SimTime};

use crate::Scheduler;

/// Reference slot length for the time-weighted averaging step: β is
/// interpreted as "per 1 ms of channel time".
const REF_SLOT_SECS: f64 = 1.0e-3;

/// EWMA weight for the `R_i` *measurement* smoother. Decoupled from β:
/// β sets the fairness horizon (how long past allocations count), while
/// this only damps per-frame airtime jitter in the rate estimate.
const RATE_SMOOTH: f64 = 0.1;

/// Tunables for [`PfScheduler`].
#[derive(Clone, Copy, Debug)]
pub struct PfConfig {
    /// EWMA weight β for the average allocated rate `T_i`, per 1 ms of
    /// channel time (0 < β ≤ 1). The fairness horizon is t_c ≈ 1/β ms:
    /// the classic choice t_c = 1000 slots gives β = 0.001 (≈ 1 s),
    /// which is the default. Larger β tracks faster but drifts toward
    /// per-frame fairness once the horizon nears a slow frame's ~13 ms
    /// airtime.
    pub beta: f64,
    /// Total packet buffer split across client queues (§4.4).
    pub total_buffer: usize,
    /// Queue drop policy.
    pub buffer: BufferPolicy,
}

impl Default for PfConfig {
    fn default() -> Self {
        PfConfig {
            beta: 0.001,
            total_buffer: 100,
            buffer: BufferPolicy::DropTail,
        }
    }
}

#[derive(Clone, Copy, Debug)]
struct PfState {
    /// QoS weight (1.0 = equal share).
    weight: f64,
    /// Measured instantaneous achievable rate `R_i`, bit/s (β-EWMA of
    /// `bytes × 8 / airtime` over completed downlink exchanges).
    inst: f64,
    /// β-EWMA average allocated rate `T_i`, bit/s.
    avg: f64,
    /// Completed downlink exchanges observed (0 = never sampled, which
    /// grants infinite priority until the first measurement lands).
    samples: u64,
    /// Bytes of the most recent AP transmission to this client, awaiting
    /// its COMPLETEEVENT so `R_i` can be sampled.
    pending_bytes: u64,
    active: bool,
}

impl PfState {
    fn fresh(weight: f64) -> Self {
        PfState {
            weight,
            inst: 0.0,
            avg: 0.0,
            samples: 0,
            pending_bytes: 0,
            active: true,
        }
    }
}

/// Proportional-fair AP scheduler.
pub struct PfScheduler {
    config: PfConfig,
    pool: QueuePool,
    states: Vec<PfState>,
    /// Rotating tie-break origin (cold-start clients share infinite
    /// priority; steady-state f64 ties are rare but must stay fair).
    next: usize,
}

impl PfScheduler {
    /// Creates an empty proportional-fair scheduler.
    pub fn new(config: PfConfig) -> Self {
        assert!(
            config.beta > 0.0 && config.beta <= 1.0,
            "beta must be in (0, 1]"
        );
        PfScheduler {
            pool: QueuePool::with_policy(config.total_buffer, config.buffer),
            config,
            states: Vec::new(),
            next: 0,
        }
    }

    /// The client's current β-EWMA average allocated rate `T_i`, bit/s.
    pub fn average_rate(&self, client: ClientId) -> Option<f64> {
        self.pool.slot_of(client).map(|i| self.states[i].avg)
    }

    /// The client's measured instantaneous rate `R_i`, bit/s (`None`
    /// before the first completed downlink exchange).
    pub fn instantaneous_rate(&self, client: ClientId) -> Option<f64> {
        self.pool
            .slot_of(client)
            .filter(|&i| self.states[i].samples > 0)
            .map(|i| self.states[i].inst)
    }

    fn register(&mut self, client: ClientId, weight: f64) {
        let slot = self.pool.add_client(client);
        if slot >= self.states.len() {
            self.states.push(PfState::fresh(weight));
        } else if !self.states[slot].active {
            // Re-association starts from scratch: stale rate history
            // would mis-rank the client against the current cell.
            self.states[slot] = PfState::fresh(weight);
        } else {
            self.states[slot].weight = weight;
        }
    }

    /// The PF metric for slot `i`, or `None` when it cannot compete
    /// (inactive or empty queue). `f64::INFINITY` marks a never-sampled
    /// client that must be scheduled to be measured.
    fn priority(&self, i: usize) -> Option<f64> {
        let s = &self.states[i];
        if !s.active || self.pool.queues[i].is_empty() {
            return None;
        }
        if s.samples == 0 {
            return Some(f64::INFINITY);
        }
        // avg can only be 0 here if every allocation decayed away
        // entirely (β = 1 and an unserved stretch); treat as maximal
        // urgency like a cold start.
        if s.avg <= 0.0 {
            return Some(f64::INFINITY);
        }
        Some(s.weight * s.inst / s.avg)
    }
}

impl ApScheduler for PfScheduler {
    fn on_associate(&mut self, client: ClientId, _now: SimTime) {
        // Keep an existing weight on redundant registration.
        let weight = self
            .pool
            .slot_of(client)
            .filter(|&i| self.states[i].active)
            .map(|i| self.states[i].weight)
            .unwrap_or(1.0);
        self.register(client, weight);
    }

    fn on_disassociate(&mut self, client: ClientId, _now: SimTime) -> Vec<QueuedPacket> {
        let flushed = self.pool.flush_client(client);
        if let Some(slot) = self.pool.slot_of(client) {
            self.states[slot].active = false;
            self.states[slot].pending_bytes = 0;
        }
        flushed
    }

    fn enqueue(&mut self, pkt: QueuedPacket, now: SimTime) -> EnqueueOutcome {
        self.on_associate(pkt.client, now);
        self.pool.enqueue(pkt)
    }

    fn dequeue(&mut self, _now: SimTime) -> Option<QueuedPacket> {
        let n = self.pool.len();
        if n == 0 || self.pool.backlog() == 0 {
            return None;
        }
        // Argmax of the PF metric; scanning from the rotating origin
        // makes equal priorities take turns (strict `>` keeps the first
        // maximum found in scan order).
        let mut best: Option<(usize, f64)> = None;
        for k in 0..n {
            let i = (self.next + k) % n;
            if let Some(p) = self.priority(i) {
                if best.is_none_or(|(_, bp)| p > bp) {
                    best = Some((i, p));
                }
            }
        }
        let (i, _) = best?;
        let pkt = self.pool.queues[i].pop_front()?;
        self.states[i].pending_bytes = pkt.bytes;
        self.next = (i + 1) % n;
        Some(pkt)
    }

    fn on_complete(
        &mut self,
        client: ClientId,
        airtime: SimDuration,
        sent_by_ap: bool,
        _now: SimTime,
    ) {
        // PF paces only the AP's own transmissions (like TXOP grants);
        // uplink exchanges carry no allocation to account.
        if !sent_by_ap {
            return;
        }
        let Some(slot) = self.pool.slot_of(client) else {
            return;
        };
        let beta = self.config.beta;
        let secs = airtime.as_secs_f64();
        let bytes = self.states[slot].pending_bytes;
        // Sample R_i from the exchange the AP just completed. A late
        // completion for a client with no recorded transmission (e.g.
        // a frame already committed to the MAC when the client
        // disassociated and re-associated) contributes no sample.
        if secs > 0.0 && bytes > 0 {
            let sample = bytes as f64 * 8.0 / secs;
            let s = &mut self.states[slot];
            s.inst = if s.samples == 0 {
                sample
            } else {
                (1.0 - RATE_SMOOTH) * s.inst + RATE_SMOOTH * sample
            };
            s.samples += 1;
            s.pending_bytes = 0;
        }
        // The PF averaging step: every active client's T_i moves — the
        // served one toward its achieved rate, the rest toward zero.
        // Time-weighted (see module docs): a Δt-long exchange counts as
        // Δt / 1 ms equal slots, so T_i averages over channel time, not
        // over variable-length opportunities.
        let beta_eff = 1.0 - (1.0 - beta).powf(secs / REF_SLOT_SECS);
        let served_rate = {
            let s = &self.states[slot];
            if secs > 0.0 {
                s.inst
            } else {
                0.0
            }
        };
        for (i, s) in self.states.iter_mut().enumerate() {
            if !s.active {
                continue;
            }
            let allocated = if i == slot { served_rate } else { 0.0 };
            s.avg = (1.0 - beta_eff) * s.avg + beta_eff * allocated;
        }
    }

    fn on_tick(&mut self, _now: SimTime) {}

    fn tick_period(&self) -> Option<SimDuration> {
        None
    }

    fn backlog(&self) -> usize {
        self.pool.backlog()
    }

    fn queue_len(&self, client: ClientId) -> usize {
        self.pool
            .slot_of(client)
            .map_or(0, |i| self.pool.queues[i].len())
    }

    fn has_eligible(&self, _now: SimTime) -> bool {
        self.pool.backlog() > 0
    }

    fn drops(&self) -> u64 {
        self.pool.drops()
    }
}

impl Scheduler for PfScheduler {
    fn on_associate_weighted(&mut self, client: ClientId, weight: f64, _now: SimTime) {
        assert!(weight > 0.0, "weight must be positive");
        self.register(client, weight);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const AIRTIME_11M: SimDuration = SimDuration::from_micros(1617);
    const AIRTIME_1M: SimDuration = SimDuration::from_micros(12_854);

    fn pkt(client: usize, handle: u64) -> QueuedPacket {
        QueuedPacket {
            client: ClientId(client),
            handle,
            bytes: 1500,
        }
    }

    /// Saturated synthetic channel: per-client frame airtimes, greedy
    /// backlog, serve until `span` of channel time has elapsed.
    fn drive(costs: &[SimDuration], span: SimDuration) -> (Vec<SimDuration>, Vec<u64>) {
        let mut s = PfScheduler::new(PfConfig::default());
        let n = costs.len();
        let mut now = SimTime::ZERO;
        for c in 0..n {
            s.on_associate(ClientId(c), now);
        }
        let end = SimTime::ZERO + span;
        let mut airtime = vec![SimDuration::ZERO; n];
        let mut frames = vec![0u64; n];
        let mut h = 0;
        while now < end {
            for c in 0..n {
                while s.queue_len(ClientId(c)) < 10 {
                    s.enqueue(pkt(c, h), now);
                    h += 1;
                }
            }
            let p = s.dequeue(now).expect("work-conserving under backlog");
            let cost = costs[p.client.index()];
            now += cost;
            airtime[p.client.index()] += cost;
            frames[p.client.index()] += 1;
            s.on_complete(p.client, cost, true, now);
        }
        (airtime, frames)
    }

    #[test]
    fn equal_rates_degenerate_to_equal_service() {
        let (_, frames) = drive(&[AIRTIME_11M, AIRTIME_11M], SimDuration::from_secs(10));
        let ratio = frames[0] as f64 / frames[1] as f64;
        assert!((0.95..1.05).contains(&ratio), "frame ratio {ratio}");
    }

    #[test]
    fn mixed_rates_yield_equal_airtime_shares() {
        // The PF equilibrium for two saturated clients on a
        // time-shared channel is equal *time* shares: each client's
        // priority R_i/T_i settles where time fractions equalise, so
        // the fast client moves ~8× the frames of the 1M one.
        let (airtime, frames) = drive(&[AIRTIME_11M, AIRTIME_1M], SimDuration::from_secs(30));
        let ratio = airtime[0].as_secs_f64() / airtime[1].as_secs_f64();
        assert!((0.85..1.15).contains(&ratio), "airtime ratio {ratio}");
        assert!(
            frames[0] > 5 * frames[1],
            "fast client should move far more frames: {frames:?}"
        );
    }

    #[test]
    fn weight_tilts_airtime() {
        let mut s = PfScheduler::new(PfConfig::default());
        let now = SimTime::ZERO;
        s.on_associate_weighted(ClientId(0), 2.0, now);
        s.on_associate_weighted(ClientId(1), 1.0, now);
        let costs = [AIRTIME_11M, AIRTIME_11M];
        let mut served = [SimDuration::ZERO; 2];
        let mut t = SimTime::ZERO;
        let mut h = 0;
        while t < SimTime::ZERO + SimDuration::from_secs(20) {
            for c in 0..2 {
                while s.queue_len(ClientId(c)) < 10 {
                    s.enqueue(pkt(c, h), t);
                    h += 1;
                }
            }
            let p = s.dequeue(t).unwrap();
            let cost = costs[p.client.index()];
            t += cost;
            served[p.client.index()] += cost;
            s.on_complete(p.client, cost, true, t);
        }
        let ratio = served[0].as_secs_f64() / served[1].as_secs_f64();
        assert!(ratio > 1.5, "weight-2 client got ratio {ratio}");
    }

    #[test]
    fn cold_start_samples_every_client_before_ranking() {
        let mut s = PfScheduler::new(PfConfig::default());
        let now = SimTime::ZERO;
        for c in 0..3 {
            s.on_associate(ClientId(c), now);
            s.enqueue(pkt(c, c as u64), now);
        }
        let mut first: Vec<usize> = Vec::new();
        for _ in 0..3 {
            let p = s.dequeue(now).unwrap();
            first.push(p.client.index());
            s.on_complete(p.client, AIRTIME_11M, true, now);
        }
        first.sort_unstable();
        assert_eq!(first, vec![0, 1, 2], "each client sampled once first");
    }

    #[test]
    fn uplink_completions_are_ignored() {
        let mut s = PfScheduler::new(PfConfig::default());
        let now = SimTime::ZERO;
        s.on_associate(ClientId(0), now);
        s.on_complete(ClientId(0), AIRTIME_1M, false, now);
        assert_eq!(s.average_rate(ClientId(0)), Some(0.0));
        assert_eq!(s.instantaneous_rate(ClientId(0)), None);
    }

    #[test]
    fn work_conserving_and_tick_free() {
        let mut s = PfScheduler::new(PfConfig::default());
        let now = SimTime::ZERO;
        s.enqueue(pkt(0, 1), now);
        assert!(s.has_eligible(now));
        assert!(s.dequeue(now).is_some());
        assert_eq!(s.tick_period(), None);
    }

    #[test]
    fn reassociation_resets_rate_history() {
        let mut s = PfScheduler::new(PfConfig::default());
        let now = SimTime::ZERO;
        s.on_associate(ClientId(0), now);
        s.enqueue(pkt(0, 1), now);
        let p = s.dequeue(now).unwrap();
        s.on_complete(p.client, AIRTIME_11M, true, now);
        assert!(s.instantaneous_rate(ClientId(0)).is_some());
        s.on_disassociate(ClientId(0), now);
        s.on_associate(ClientId(0), now);
        assert_eq!(s.instantaneous_rate(ClientId(0)), None);
    }
}
