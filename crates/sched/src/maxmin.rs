//! Max-min fair scheduling by airtime waterfilling.
//!
//! The allocation target comes from [`airtime_core::waterfill_airtime`]:
//! raise a common water level τ and give every client the throughput
//! `x_i = min(demand_i, w_i·τ)` subject to the channel-time constraint
//! `Σ x_i / r_i ≤ 1`, where `r_i` is the client's achievable rate. For
//! saturated multi-rate cells this *equalises throughput* — every
//! client drains at the rate the slowest constraint allows — which is
//! exactly the throughput-fair baseline the paper measures FIFO/DRR
//! against, but computed in closed form rather than emerging from
//! per-packet accounting.
//!
//! The scheduler realises the target with a credit loop:
//!
//! 1. On every service decision, re-waterfill over the *backlogged*
//!    clients (demand = achievable rate when backlogged, 0 otherwise)
//!    and accrue `credit_i += x_i · Δt` bits since the last decision.
//! 2. Serve the backlogged client with the most credit (rotating
//!    tie-break) and debit the packet's bits.
//!
//! Credits are capped at a short burst window so a client that was
//! starved by the MAC cannot bank unbounded service, and may go
//! negative so the loop stays **work-conserving**: whenever anything is
//! backlogged, something is served.
//!
//! Achievable rates are measured, not configured: like the PF
//! contender, each AP transmission's `bytes × 8 / airtime` feeds an
//! EWMA per client (new clients start from a nominal estimate until the
//! first sample lands). All state changes live in event hooks — no
//! timer ticks — so dense and coalesced tick modes are bit-identical by
//! construction.

use airtime_core::{
    waterfill_airtime, ApScheduler, BufferPolicy, ClientId, EnqueueOutcome, QueuePool, QueuedPacket,
};
use airtime_sim::{SimDuration, SimTime};

use crate::Scheduler;

/// Nominal achievable-rate estimate (bit/s) for a client the AP has not
/// yet observed transmitting — roughly 802.11b's 11 Mbit/s of MAC-layer
/// goodput. Replaced by measurement after the first completed exchange.
const NOMINAL_RATE: f64 = 1.0e7;

/// Burst window for banked credit, seconds: a client can owe or be owed
/// at most this much of its waterfilled share.
const CREDIT_CAP_SECS: f64 = 0.25;

/// Tunables for [`MaxMinScheduler`].
#[derive(Clone, Copy, Debug)]
pub struct MaxMinConfig {
    /// EWMA weight for the measured achievable rate `r_i` (0 < α ≤ 1).
    pub rate_ewma: f64,
    /// Total packet buffer split across client queues (§4.4).
    pub total_buffer: usize,
    /// Queue drop policy.
    pub buffer: BufferPolicy,
}

impl Default for MaxMinConfig {
    fn default() -> Self {
        MaxMinConfig {
            rate_ewma: 0.2,
            total_buffer: 100,
            buffer: BufferPolicy::DropTail,
        }
    }
}

#[derive(Clone, Copy, Debug)]
struct MmState {
    /// QoS weight (scales the water level share).
    weight: f64,
    /// Measured achievable rate `r_i`, bit/s (EWMA; [`NOMINAL_RATE`]
    /// until the first sample).
    rate: f64,
    /// Completed downlink exchanges observed.
    samples: u64,
    /// Bytes of the most recent AP transmission awaiting completion.
    pending_bytes: u64,
    /// Banked service, bits. Negative = served ahead of its share.
    credit: f64,
    active: bool,
}

impl MmState {
    fn fresh(weight: f64) -> Self {
        MmState {
            weight,
            rate: NOMINAL_RATE,
            samples: 0,
            pending_bytes: 0,
            credit: 0.0,
            active: true,
        }
    }
}

/// Max-min (waterfilling) AP scheduler.
pub struct MaxMinScheduler {
    config: MaxMinConfig,
    pool: QueuePool,
    states: Vec<MmState>,
    /// Instant of the last credit accrual.
    last_accrual: SimTime,
    /// Rotating tie-break origin for equal credits.
    next: usize,
}

impl MaxMinScheduler {
    /// Creates an empty max-min scheduler.
    pub fn new(config: MaxMinConfig) -> Self {
        assert!(
            config.rate_ewma > 0.0 && config.rate_ewma <= 1.0,
            "rate_ewma must be in (0, 1]"
        );
        MaxMinScheduler {
            pool: QueuePool::with_policy(config.total_buffer, config.buffer),
            config,
            states: Vec::new(),
            last_accrual: SimTime::ZERO,
            next: 0,
        }
    }

    /// The client's current achievable-rate estimate `r_i`, bit/s
    /// (`None` before the first completed downlink exchange).
    pub fn achievable_rate(&self, client: ClientId) -> Option<f64> {
        self.pool
            .slot_of(client)
            .filter(|&i| self.states[i].samples > 0)
            .map(|i| self.states[i].rate)
    }

    fn register(&mut self, client: ClientId, weight: f64) {
        let slot = self.pool.add_client(client);
        if slot >= self.states.len() {
            self.states.push(MmState::fresh(weight));
        } else if !self.states[slot].active {
            // Re-association starts clean: banked credit and stale rate
            // history belong to the previous visit.
            self.states[slot] = MmState::fresh(weight);
        } else {
            self.states[slot].weight = weight;
        }
    }

    /// Waterfills the current backlog picture and banks `Δt` worth of
    /// each client's target throughput as credit.
    fn accrue(&mut self, now: SimTime) {
        let dt = now.saturating_since(self.last_accrual).as_secs_f64();
        self.last_accrual = now;
        if dt <= 0.0 {
            return;
        }
        let n = self.states.len();
        let mut demands = vec![0.0; n];
        let mut rates = vec![0.0; n];
        let mut weights = vec![0.0; n];
        let mut any = false;
        for i in 0..n {
            let s = &self.states[i];
            rates[i] = s.rate.max(1.0);
            weights[i] = if s.active { s.weight } else { 0.0 };
            if s.active && !self.pool.queues[i].is_empty() {
                // Saturated demand: a backlogged client wants all the
                // rate its link can carry; the water level trims it.
                demands[i] = rates[i];
                any = true;
            }
        }
        if !any {
            return;
        }
        let targets = waterfill_airtime(&demands, &rates, &weights);
        for (s, &target) in self.states.iter_mut().zip(&targets) {
            let cap = CREDIT_CAP_SECS * target.max(s.rate);
            s.credit = (s.credit + target * dt).min(cap);
        }
    }
}

impl ApScheduler for MaxMinScheduler {
    fn on_associate(&mut self, client: ClientId, _now: SimTime) {
        let weight = self
            .pool
            .slot_of(client)
            .filter(|&i| self.states[i].active)
            .map(|i| self.states[i].weight)
            .unwrap_or(1.0);
        self.register(client, weight);
    }

    fn on_disassociate(&mut self, client: ClientId, _now: SimTime) -> Vec<QueuedPacket> {
        let flushed = self.pool.flush_client(client);
        if let Some(slot) = self.pool.slot_of(client) {
            self.states[slot].active = false;
            self.states[slot].pending_bytes = 0;
            self.states[slot].credit = 0.0;
        }
        flushed
    }

    fn enqueue(&mut self, pkt: QueuedPacket, now: SimTime) -> EnqueueOutcome {
        self.on_associate(pkt.client, now);
        self.pool.enqueue(pkt)
    }

    fn dequeue(&mut self, now: SimTime) -> Option<QueuedPacket> {
        if self.pool.backlog() == 0 {
            return None;
        }
        self.accrue(now);
        let n = self.pool.len();
        // Work-conserving argmax: credits may be negative, but as long
        // as anything is backlogged something gets served.
        let mut best: Option<(usize, f64)> = None;
        for k in 0..n {
            let i = (self.next + k) % n;
            if !self.states[i].active || self.pool.queues[i].is_empty() {
                continue;
            }
            let c = self.states[i].credit;
            if best.is_none_or(|(_, bc)| c > bc) {
                best = Some((i, c));
            }
        }
        let (i, _) = best?;
        let pkt = self.pool.queues[i].pop_front()?;
        self.states[i].credit -= pkt.bytes as f64 * 8.0;
        self.states[i].pending_bytes = pkt.bytes;
        self.next = (i + 1) % n;
        Some(pkt)
    }

    fn on_complete(
        &mut self,
        client: ClientId,
        airtime: SimDuration,
        sent_by_ap: bool,
        _now: SimTime,
    ) {
        // Only the AP's own transmissions carry a rate sample the
        // scheduler can attribute (mirrors the PF contender and TXOP).
        if !sent_by_ap {
            return;
        }
        let Some(slot) = self.pool.slot_of(client) else {
            return;
        };
        let secs = airtime.as_secs_f64();
        let bytes = self.states[slot].pending_bytes;
        if secs > 0.0 && bytes > 0 {
            let sample = bytes as f64 * 8.0 / secs;
            let a = self.config.rate_ewma;
            let s = &mut self.states[slot];
            s.rate = if s.samples == 0 {
                sample
            } else {
                (1.0 - a) * s.rate + a * sample
            };
            s.samples += 1;
            s.pending_bytes = 0;
        }
    }

    fn on_tick(&mut self, _now: SimTime) {}

    fn tick_period(&self) -> Option<SimDuration> {
        None
    }

    fn backlog(&self) -> usize {
        self.pool.backlog()
    }

    fn queue_len(&self, client: ClientId) -> usize {
        self.pool
            .slot_of(client)
            .map_or(0, |i| self.pool.queues[i].len())
    }

    fn has_eligible(&self, _now: SimTime) -> bool {
        self.pool.backlog() > 0
    }

    fn drops(&self) -> u64 {
        self.pool.drops()
    }
}

impl Scheduler for MaxMinScheduler {
    fn on_associate_weighted(&mut self, client: ClientId, weight: f64, _now: SimTime) {
        assert!(weight > 0.0, "weight must be positive");
        self.register(client, weight);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const AIRTIME_11M: SimDuration = SimDuration::from_micros(1617);
    const AIRTIME_1M: SimDuration = SimDuration::from_micros(12_854);

    fn pkt(client: usize, handle: u64) -> QueuedPacket {
        QueuedPacket {
            client: ClientId(client),
            handle,
            bytes: 1500,
        }
    }

    /// Saturated synthetic channel: greedy backlog per client, serve
    /// until `span` of channel time has elapsed.
    fn drive(
        costs: &[SimDuration],
        weights: &[f64],
        span: SimDuration,
    ) -> (Vec<SimDuration>, Vec<u64>) {
        let mut s = MaxMinScheduler::new(MaxMinConfig::default());
        let n = costs.len();
        let mut now = SimTime::ZERO;
        for (c, &w) in weights.iter().enumerate() {
            s.on_associate_weighted(ClientId(c), w, now);
        }
        let end = SimTime::ZERO + span;
        let mut airtime = vec![SimDuration::ZERO; n];
        let mut frames = vec![0u64; n];
        let mut h = 0;
        while now < end {
            for c in 0..n {
                while s.queue_len(ClientId(c)) < 10 {
                    s.enqueue(pkt(c, h), now);
                    h += 1;
                }
            }
            let p = s.dequeue(now).expect("work-conserving under backlog");
            let cost = costs[p.client.index()];
            now += cost;
            airtime[p.client.index()] += cost;
            frames[p.client.index()] += 1;
            s.on_complete(p.client, cost, true, now);
        }
        (airtime, frames)
    }

    #[test]
    fn equal_rates_split_evenly() {
        let (_, frames) = drive(
            &[AIRTIME_11M, AIRTIME_11M],
            &[1.0, 1.0],
            SimDuration::from_secs(10),
        );
        let ratio = frames[0] as f64 / frames[1] as f64;
        assert!((0.95..1.05).contains(&ratio), "frame ratio {ratio}");
    }

    #[test]
    fn saturated_mixed_rates_equalize_throughput() {
        // Saturated max-min over a multi-rate cell is throughput-fair:
        // both clients drain equal bits, so the 1 Mbit/s client eats
        // ~8× the airtime of the 11 Mbit/s one.
        let (airtime, frames) = drive(
            &[AIRTIME_11M, AIRTIME_1M],
            &[1.0, 1.0],
            SimDuration::from_secs(30),
        );
        let fr = frames[0] as f64 / frames[1] as f64;
        assert!((0.9..1.1).contains(&fr), "frame ratio {fr}");
        assert!(
            airtime[1].as_secs_f64() > 5.0 * airtime[0].as_secs_f64(),
            "slow client should dominate airtime: {airtime:?}"
        );
    }

    #[test]
    fn weights_tilt_throughput() {
        let (_, frames) = drive(
            &[AIRTIME_11M, AIRTIME_11M],
            &[2.0, 1.0],
            SimDuration::from_secs(20),
        );
        let ratio = frames[0] as f64 / frames[1] as f64;
        assert!(
            (1.6..2.4).contains(&ratio),
            "weight-2 client should move ~2x the frames, got {ratio}"
        );
    }

    #[test]
    fn idle_client_banks_no_credit() {
        let mut s = MaxMinScheduler::new(MaxMinConfig::default());
        let mut now = SimTime::ZERO;
        s.on_associate(ClientId(0), now);
        s.on_associate(ClientId(1), now);
        // Client 0 saturates alone for a second; client 1 stays idle.
        let mut h = 0;
        for _ in 0..100 {
            while s.queue_len(ClientId(0)) < 4 {
                s.enqueue(pkt(0, h), now);
                h += 1;
            }
            let p = s.dequeue(now).unwrap();
            now += AIRTIME_11M;
            s.on_complete(p.client, AIRTIME_11M, true, now);
        }
        // When client 1 finally shows up it competes from (near) zero
        // credit — no stockpile from its idle period.
        s.enqueue(pkt(1, h), now);
        let banked = s.states[1].credit;
        assert!(
            banked <= 1.0,
            "idle client must not bank credit, has {banked} bits"
        );
    }

    #[test]
    fn uplink_completions_are_ignored() {
        let mut s = MaxMinScheduler::new(MaxMinConfig::default());
        let now = SimTime::ZERO;
        s.on_associate(ClientId(0), now);
        s.on_complete(ClientId(0), AIRTIME_1M, false, now);
        assert_eq!(s.achievable_rate(ClientId(0)), None);
    }

    #[test]
    fn work_conserving_and_tick_free() {
        let mut s = MaxMinScheduler::new(MaxMinConfig::default());
        let now = SimTime::ZERO;
        s.enqueue(pkt(0, 1), now);
        assert!(s.has_eligible(now));
        assert!(s.dequeue(now).is_some());
        assert_eq!(s.tick_period(), None);
    }

    #[test]
    fn reassociation_resets_state() {
        let mut s = MaxMinScheduler::new(MaxMinConfig::default());
        let now = SimTime::ZERO;
        s.on_associate(ClientId(0), now);
        s.enqueue(pkt(0, 1), now);
        let p = s.dequeue(now).unwrap();
        s.on_complete(p.client, AIRTIME_11M, true, now);
        assert!(s.achievable_rate(ClientId(0)).is_some());
        s.on_disassociate(ClientId(0), now);
        s.on_associate(ClientId(0), now);
        assert_eq!(s.achievable_rate(ClientId(0)), None);
        assert_eq!(s.states[0].credit, 0.0);
    }
}
