//! `airtime-sched` — the pluggable AP fairness-policy subsystem.
//!
//! The paper argues *time-based* regulation (TBR) beats throughput
//! fairness in multi-rate cells, but TBR is one point in the policy
//! space. This crate turns the AP scheduler into a first-class
//! subsystem so contenders can be compared side by side:
//!
//! - [`Scheduler`] — the pluggable trait every discipline implements:
//!   the [`ApScheduler`] event hooks (enqueue / select / on-tx-complete
//!   / tick coalescing) plus weighted association and optional
//!   token-state introspection, so embedders never downcast to a
//!   concrete type.
//! - [`SchedulerKind`] — plain-data configuration naming a family and
//!   its tunables; [`SchedulerKind::build`] constructs the boxed
//!   discipline.
//! - [`FAMILIES`] — the single registry of family names shared by the
//!   scenario compiler, the CLI, the tournament runner and the bench
//!   binaries (one list, no drift).
//!
//! The baseline families (FIFO / round-robin / DRR / TBR / TXOP) are
//! re-exported from `airtime-core`; this crate adds two contenders from
//! the literature retrieved in PAPERS.md:
//!
//! - [`PfScheduler`] — proportional fair (Patras et al.; the classic
//!   cellular argmax of `instantaneous rate / β-EWMA average rate`).
//! - [`MaxMinScheduler`] — max-min throughput fairness via
//!   water-filling over per-station *achievable* rates (Leith et al.),
//!   built on [`airtime_core::waterfill_airtime`].
//!
//! Both contenders are tick-free: every state update happens inside an
//! event hook, so dense and coalesced tick modes are trivially
//! bit-identical and the determinism contract holds by construction.

use airtime_sim::SimTime;

pub mod maxmin;
pub mod pf;

// Re-export the abstraction and the baseline implementations so
// embedders depend on one scheduler crate.
pub use airtime_core::{
    ApScheduler, BufferPolicy, ClientId, DrrScheduler, EnqueueOutcome, FifoScheduler, QueuePool,
    QueuedPacket, RedConfig, RoundRobinScheduler, TbrConfig, TbrScheduler, TxopConfig,
    TxopScheduler,
};
pub use maxmin::{MaxMinConfig, MaxMinScheduler};
pub use pf::{PfConfig, PfScheduler};

/// A pluggable AP scheduling discipline.
///
/// Extends [`ApScheduler`] (the paper's five event handlers plus the
/// tick-coalescing contract) with the hooks the embedding simulator
/// needs to treat every family uniformly:
///
/// - [`on_associate_weighted`](Scheduler::on_associate_weighted) — the
///   §4.5 weighted-share extension. The default ignores the weight and
///   registers the client plainly, so unweighted disciplines need no
///   code; weighted ones (TBR, DRR, PF, max-min) override it.
/// - [`token_balance_ns`](Scheduler::token_balance_ns) /
///   [`token_fill_rate`](Scheduler::token_fill_rate) — optional
///   introspection for token-regulated families, feeding token gauges,
///   `TokenUpdate` observer events and the §4.1 client-cooperation
///   defer without downcasting. Disciplines without token state return
///   `None` (the default).
pub trait Scheduler: ApScheduler {
    /// A client joined the cell with a QoS weight (1.0 = equal share).
    /// Disciplines without weighted shares ignore the weight.
    fn on_associate_weighted(&mut self, client: ClientId, weight: f64, now: SimTime) {
        let _ = weight;
        self.on_associate(client, now);
    }

    /// The client's channel-time token balance in nanoseconds, for
    /// token-regulated disciplines; `None` otherwise.
    fn token_balance_ns(&self, _client: ClientId) -> Option<f64> {
        None
    }

    /// The client's token fill rate as a fraction of wall-clock time,
    /// for token-regulated disciplines; `None` otherwise.
    fn token_fill_rate(&self, _client: ClientId) -> Option<f64> {
        None
    }
}

impl Scheduler for FifoScheduler {}

impl Scheduler for RoundRobinScheduler {}

impl Scheduler for TxopScheduler {}

impl Scheduler for DrrScheduler {
    fn on_associate_weighted(&mut self, client: ClientId, weight: f64, now: SimTime) {
        DrrScheduler::on_associate_weighted(self, client, weight, now);
    }
}

impl Scheduler for TbrScheduler {
    fn on_associate_weighted(&mut self, client: ClientId, weight: f64, now: SimTime) {
        TbrScheduler::on_associate_weighted(self, client, weight, now);
    }

    fn token_balance_ns(&self, client: ClientId) -> Option<f64> {
        self.tokens_of(client)
    }

    fn token_fill_rate(&self, client: ClientId) -> Option<f64> {
        self.rate_of(client)
    }
}

/// Which queue discipline the AP's transmit path runs — plain data; two
/// runs of the same kind are bit-identical.
#[derive(Clone, Debug)]
pub enum SchedulerKind {
    /// Single shared drop-tail queue (stock AP, the paper's Exp-Normal
    /// kernel interface queue).
    Fifo,
    /// Per-client round robin (common AP behaviour, §2.4).
    RoundRobin,
    /// Deficit Round Robin (wired-style fair queuing, citation \[24\]),
    /// weight-aware: each visit grants `weight × quantum` bytes.
    Drr,
    /// The paper's Time-based Regulator (Exp-TBR).
    Tbr(TbrConfig),
    /// TXOP-style channel-time grants (the §4.5 802.11e integration;
    /// downlink-only regulation).
    Txop(TxopConfig),
    /// Proportional fair: serve the backlogged client maximising
    /// `weight × instantaneous rate / β-EWMA average rate`.
    Pf(PfConfig),
    /// Max-min throughput fairness by water-filling one unit of airtime
    /// over per-station achievable rates.
    MaxMin(MaxMinConfig),
}

impl SchedulerKind {
    /// The default Exp-TBR configuration.
    pub fn tbr() -> Self {
        SchedulerKind::Tbr(TbrConfig::default())
    }

    /// The default TXOP-grant configuration.
    pub fn txop() -> Self {
        SchedulerKind::Txop(TxopConfig::default())
    }

    /// The default proportional-fair configuration.
    pub fn pf() -> Self {
        SchedulerKind::Pf(PfConfig::default())
    }

    /// The default max-min waterfilling configuration.
    pub fn maxmin() -> Self {
        SchedulerKind::MaxMin(MaxMinConfig::default())
    }

    /// The family name this kind belongs to (a [`FAMILIES`] entry).
    pub fn family(&self) -> &'static str {
        match self {
            SchedulerKind::Fifo => "fifo",
            SchedulerKind::RoundRobin => "rr",
            SchedulerKind::Drr => "drr",
            SchedulerKind::Tbr(_) => "tbr",
            SchedulerKind::Txop(_) => "txop",
            SchedulerKind::Pf(_) => "pf",
            SchedulerKind::MaxMin(_) => "maxmin",
        }
    }

    /// The default configuration of the named family, or `None` for an
    /// unknown name. The accepted names are exactly [`FAMILIES`].
    pub fn from_family(name: &str) -> Option<Self> {
        match name {
            "fifo" => Some(SchedulerKind::Fifo),
            "rr" => Some(SchedulerKind::RoundRobin),
            "drr" => Some(SchedulerKind::Drr),
            "tbr" => Some(SchedulerKind::tbr()),
            "txop" => Some(SchedulerKind::txop()),
            "pf" => Some(SchedulerKind::pf()),
            "maxmin" => Some(SchedulerKind::maxmin()),
            _ => None,
        }
    }

    /// Constructs the discipline this kind describes.
    pub fn build(&self) -> Box<dyn Scheduler> {
        match self {
            SchedulerKind::Fifo => Box::new(FifoScheduler::default()),
            SchedulerKind::RoundRobin => Box::new(RoundRobinScheduler::default()),
            SchedulerKind::Drr => Box::new(DrrScheduler::default()),
            SchedulerKind::Tbr(c) => Box::new(TbrScheduler::new(*c)),
            SchedulerKind::Txop(c) => Box::new(TxopScheduler::new(*c)),
            SchedulerKind::Pf(c) => Box::new(PfScheduler::new(*c)),
            SchedulerKind::MaxMin(c) => Box::new(MaxMinScheduler::new(*c)),
        }
    }
}

/// One entry of the scheduler-family registry.
#[derive(Clone, Copy, Debug)]
pub struct Family {
    /// The name scenario files, the CLI and the tournament use.
    pub name: &'static str,
    /// One-line description for help text and docs.
    pub summary: &'static str,
    /// Whether the family targets equal *airtime* shares (vs equal
    /// throughput) for saturated equal-weight clients — what the
    /// baseline-property check asserts.
    pub time_fair: bool,
}

/// Every scheduler family, in canonical order. This is the single
/// source of truth: the scenario compiler, `airtime-cli --sched`, the
/// `[tournament]` runner and the ablation bench all enumerate it.
pub const FAMILIES: &[Family] = &[
    Family {
        name: "fifo",
        summary: "single shared drop-tail queue (stock AP)",
        time_fair: false,
    },
    Family {
        name: "rr",
        summary: "per-client packet round robin",
        time_fair: false,
    },
    Family {
        name: "drr",
        summary: "deficit round robin, weight-aware byte fairness",
        time_fair: false,
    },
    Family {
        name: "tbr",
        summary: "time-based regulator (the paper's Exp-TBR)",
        time_fair: true,
    },
    Family {
        name: "txop",
        summary: "802.11e TXOP-style channel-time grants",
        time_fair: true,
    },
    Family {
        name: "pf",
        summary: "proportional fair (argmax rate / beta-EWMA average)",
        time_fair: true,
    },
    Family {
        name: "maxmin",
        summary: "max-min waterfilling over achievable rates",
        time_fair: false,
    },
];

/// The comma-separated family list for diagnostics
/// (`"fifo, rr, drr, tbr, txop, pf, maxmin"`).
pub fn family_names() -> String {
    FAMILIES
        .iter()
        .map(|f| f.name)
        .collect::<Vec<_>>()
        .join(", ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_round_trips_through_kind() {
        for fam in FAMILIES {
            let kind = SchedulerKind::from_family(fam.name)
                .unwrap_or_else(|| panic!("registry family '{}' has no kind", fam.name));
            assert_eq!(kind.family(), fam.name);
            // Every registered family constructs a live discipline.
            let mut s = kind.build();
            s.on_associate(ClientId(0), SimTime::ZERO);
            assert_eq!(s.backlog(), 0);
        }
        assert!(SchedulerKind::from_family("lifo").is_none());
    }

    #[test]
    fn family_names_lists_all() {
        let names = family_names();
        for fam in FAMILIES {
            assert!(names.contains(fam.name));
        }
        assert_eq!(names, "fifo, rr, drr, tbr, txop, pf, maxmin");
    }

    #[test]
    fn weighted_associate_reaches_every_family() {
        // The trait-level weighted associate must be accepted by every
        // family (unweighted ones ignore the weight).
        for fam in FAMILIES {
            let mut s = SchedulerKind::from_family(fam.name).unwrap().build();
            s.on_associate_weighted(ClientId(0), 2.0, SimTime::ZERO);
            s.on_associate_weighted(ClientId(1), 1.0, SimTime::ZERO);
            let now = SimTime::ZERO;
            s.enqueue(
                QueuedPacket {
                    client: ClientId(0),
                    handle: 1,
                    bytes: 1500,
                },
                now,
            );
            assert!(s.backlog() > 0);
        }
    }

    #[test]
    fn token_introspection_is_tbr_only() {
        let now = SimTime::ZERO;
        for fam in FAMILIES {
            let mut s = SchedulerKind::from_family(fam.name).unwrap().build();
            s.on_associate(ClientId(0), now);
            let has_tokens = s.token_balance_ns(ClientId(0)).is_some();
            assert_eq!(has_tokens, fam.name == "tbr", "family {}", fam.name);
        }
        // And the TBR balance matches the inherent accessor.
        let mut tbr = TbrScheduler::new(TbrConfig::default());
        Scheduler::on_associate_weighted(&mut tbr, ClientId(0), 1.0, now);
        assert_eq!(
            tbr.token_balance_ns(ClientId(0)),
            tbr.tokens_of(ClientId(0))
        );
        assert_eq!(
            tbr.token_balance_ns(ClientId(0)),
            Some(TbrConfig::default().initial_tokens.as_nanos() as f64)
        );
    }
}
