//! `airtime-cli` — run custom multi-rate WLAN experiments from the
//! command line.
//!
//! ```text
//! airtime-cli run --rates 11,1 --sched tbr --direction up --secs 20
//! airtime-cli run --rates 11,1 --sched tbr --events e.jsonl --metrics m.json
//! airtime-cli inspect e.jsonl
//! airtime-cli predict --rates 11,2,1
//! airtime-cli --help
//! ```
//!
//! (The per-paper tables and figures have dedicated binaries in
//! `airtime-bench`; this tool is for ad-hoc configurations.)

use std::path::PathBuf;

use airtime::model::{gamma_measured, rf_allocation, tf_allocation, NodeSpec};
use airtime::obs::json::{array_f64, Obj};
use airtime::obs::prof::{alloc_stats, dist_json, set_alloc_counting, DEFAULT_TRACE_CAP, HOST_PID};
use airtime::obs::{
    fp_hex, AirtimeLedger, ChromeTrace, ChromeTraceObserver, CountingAlloc, FlightRecorder,
    JsonlObserver, MetricsRegistry, NullObserver, Observer, Recording, SpanCollector, TeeObserver,
};
use airtime::phy::DataRate;
use airtime::sim::SimDuration;
use airtime::topo::{run_topology, run_topology_profiled};
use airtime::wlan::{
    run, run_instrumented, run_profiled, scenarios, Direction, Report, SchedulerKind,
};

/// Allocation counting for `profile` (a gated relaxed-atomic load per
/// allocation when off — see `airtime::obs::prof::CountingAlloc`).
#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

const HELP: &str = "airtime-cli — multi-rate WLAN fairness experiments

USAGE:
    airtime-cli run [OPTIONS]       simulate a cell and print the report
    airtime-cli sweep <file.toml>   expand a scenario's [sweep] matrix and
                                    run it on a worker pool
    airtime-cli tournament <file.toml>
                                    run a scenario's [tournament] section:
                                    every listed scheduler family over
                                    every rate mix and direction, results
                                    side by side
    airtime-cli inspect <events>    summarize a JSONL event trace
    airtime-cli profile <file.toml>...
                                    time the event loop over one or more
                                    scenarios and emit a machine-readable
                                    perf report (plus an optional Chrome
                                    trace)
    airtime-cli verify-determinism <file.toml>
                                    run the scenario under every queue
                                    backend x tick-mode combo (and both
                                    1 and N sweep threads), compare
                                    flight-recorder fingerprints, and on
                                    mismatch pin the exact first
                                    divergent (time, seq, label) event
    airtime-cli replay <recording>  pretty-print a flight recording
                                    (written by run --record) as a
                                    causal event log
    airtime-cli predict [OPTIONS]   analytic RF/TF predictions (Eqs 6/12)

OPTIONS (run):
    --scenario <file>   load a full NetworkConfig from a scenario file
                        (stations, links, traffic, scheduler tables);
                        overrides --rates/--sched/--direction/--secs/--seed
    --rates <list>      comma-separated Mbit/s per station from
                        {1,2,5.5,11,6,9,12,18,24,36,48,54}   [default: 11,1]
    --sched <name>      fifo | rr | drr | tbr | txop | pf | maxmin
                                                              [default: tbr]
    --direction <dir>   up | down                             [default: up]
    --secs <n>          simulated seconds                     [default: 20]
    --seed <n>          RNG seed                              [default: 1]
    --events <path>     stream structured events to a JSONL trace
    --ledger <path>     account every microsecond of medium time to a
                        (station, category) slice, audit conservation
                        against the simulated clock (non-zero exit on
                        failure), and write the timeline as schema'd CSV
    --metrics <path>    export counters/gauges/histograms + time series
                        as JSON (implies instrumentation)
    --metrics-csv <path> export the metrics snapshot time-series as CSV
                        with a schema header (implies instrumentation)
    --record <path>     attach a flight recorder and write the causal
                        event recording (fingerprint checkpoints + the
                        retained event ring) as JSONL; topology
                        scenarios write one file per cell
                        (<stem>.cell<i>.jsonl). The report stays
                        byte-identical to an unrecorded run.
    --json              print the report as JSON instead of a table

OPTIONS (sweep):
    --threads <n>       worker threads                  [default: all cores]
    --json <path>       write the result matrix as schema'd JSON
    --csv <path>        write the result matrix as schema'd CSV

OPTIONS (tournament):
    --threads <n>       worker threads                  [default: all cores]
    --json <path>       write the tournament matrix as schema'd JSON
    --csv <path>        write the tournament matrix as schema'd CSV
The job matrix is family-major (family x rate mix x direction) and the
emitted documents are byte-identical across --threads settings. A
[scheduler] table tuning a listed family supplies that family's
configuration; the rest run registry defaults.

Scenario files with [[cells]] tables describe multi-AP topologies
(AP placement, channels, station positions and waypoint mobility).
`run` prints per-cell results plus the handoff log; `sweep` grows
roaming columns (handoffs / drops / outage / audit / per-cell Mb/s).
Either command exits non-zero if a per-cell airtime-ledger audit fails.

OPTIONS (inspect):
    --spans             per-station frame-lifecycle delay percentiles
                        (queueing / contention / head-of-line, p50/95/99)
    --audit             replay the trace's airtime ledger and run the
                        conservation audit; non-zero exit on failure
    --prof <report>     pretty-print a perf report written by
                        `profile --json` (no trace path needed)
    --fp                the positional is a flight recording (from
                        run --record): print its fingerprint timeline
                        (rolling checkpoints) instead of a trace summary

OPTIONS (profile):
    --json <path>       where to write the perf-report JSON
                        (events/sec, per-label dispatch-time quantiles,
                        per-cell lanes)      [default: profile.report.json]
    --trace-out <path>  also export the run as Chrome trace-event JSON
                        — open in chrome://tracing or ui.perfetto.dev.
                        The trace is captured in a second untimed pass,
                        so it never skews the timing numbers.
    --trace-cap <n>     cap on buffered trace events (beyond it events
                        are dropped and counted)    [default: 1000000]
Scenario [sweep] sections are ignored: profile times the base config.

OPTIONS (verify-determinism):
    --threads <n>       sweep thread count compared against 1 [default: 4]
    --interval <n>      events per fingerprint checkpoint  [default: 4096]
    --inject <combo:n>  test hook: perturb event #n of the named combo
                        (heap/dense, heap/coalesced, wheel/dense,
                        wheel/coalesced), manufacturing a synthetic
                        divergence to exercise the localization path

OPTIONS (replay):
    --window <a..b>     only print events with stream index in [a, b)

Scenario files are a TOML subset; see examples/scenarios/ and the
README's \"Scenario files\" section. Malformed files exit non-zero with
a file:line diagnostic.

OPTIONS (predict):
    --rates <list>      as above
";

fn parse_rate(tok: &str) -> Result<DataRate, String> {
    Ok(match tok {
        "1" => DataRate::B1,
        "2" => DataRate::B2,
        "5.5" => DataRate::B5_5,
        "11" => DataRate::B11,
        "6" => DataRate::G6,
        "9" => DataRate::G9,
        "12" => DataRate::G12,
        "18" => DataRate::G18,
        "24" => DataRate::G24,
        "36" => DataRate::G36,
        "48" => DataRate::G48,
        "54" => DataRate::G54,
        other => return Err(format!("unknown rate '{other}'")),
    })
}

fn parse_rates(s: &str) -> Result<Vec<DataRate>, String> {
    let rates: Result<Vec<_>, _> = s.split(',').map(|t| parse_rate(t.trim())).collect();
    let rates = rates?;
    if rates.is_empty() {
        return Err("need at least one rate".into());
    }
    Ok(rates)
}

struct Args {
    rates: Vec<DataRate>,
    sched: SchedulerKind,
    direction: Direction,
    secs: u64,
    seed: u64,
    events: Option<PathBuf>,
    ledger: Option<PathBuf>,
    metrics: Option<PathBuf>,
    metrics_csv: Option<PathBuf>,
    scenario: Option<PathBuf>,
    threads: Option<usize>,
    /// `--json` as a bare flag (`run`) or with a path (`sweep`).
    json: bool,
    json_path: Option<PathBuf>,
    csv: Option<PathBuf>,
    /// `inspect --spans`: frame-lifecycle delay percentiles.
    spans: bool,
    /// `inspect --audit`: conservation audit over the trace.
    audit: bool,
    /// `inspect --prof`: pretty-print a perf report JSON.
    prof: Option<PathBuf>,
    /// `profile --trace-out`: Chrome trace-event JSON destination.
    trace_out: Option<PathBuf>,
    /// `profile --trace-cap`: buffered-trace-event cap override.
    trace_cap: Option<usize>,
    /// `run --record`: flight-recording JSONL destination.
    record: Option<PathBuf>,
    /// `inspect --fp`: fingerprint timeline of a flight recording.
    fp: bool,
    /// `verify-determinism --interval`: events per checkpoint.
    interval: Option<u64>,
    /// `verify-determinism --inject combo:index`: synthetic divergence.
    inject: Option<String>,
    /// `replay --window a..b`: stream-index window to print.
    window: Option<String>,
    /// Positional arguments (the trace path for `inspect`, the
    /// scenario file for `sweep`, one or more scenario files for
    /// `profile` — only `profile` accepts more than one).
    positionals: Vec<String>,
}

fn parse_args(mut argv: std::env::Args) -> Result<(String, Args), String> {
    let cmd = argv.next().ok_or("missing command; try --help")?;
    if cmd == "--help" || cmd == "-h" || cmd == "help" {
        return Err(HELP.to_string());
    }
    let mut args = Args {
        rates: vec![DataRate::B11, DataRate::B1],
        sched: SchedulerKind::tbr(),
        direction: Direction::Uplink,
        secs: 20,
        seed: 1,
        events: None,
        ledger: None,
        metrics: None,
        metrics_csv: None,
        scenario: None,
        threads: None,
        json: false,
        json_path: None,
        csv: None,
        spans: false,
        audit: false,
        prof: None,
        trace_out: None,
        trace_cap: None,
        record: None,
        fp: false,
        interval: None,
        inject: None,
        window: None,
        positionals: Vec::new(),
    };
    while let Some(flag) = argv.next() {
        let mut value = || argv.next().ok_or(format!("{flag} needs a value"));
        match flag.as_str() {
            "--rates" => args.rates = parse_rates(&value()?)?,
            "--sched" => {
                let name = value()?;
                args.sched = SchedulerKind::from_family(&name).ok_or_else(|| {
                    format!(
                        "unknown scheduler '{name}'; expected one of {}",
                        airtime::sched::family_names()
                    )
                })?;
            }
            "--direction" => {
                args.direction = match value()?.as_str() {
                    "up" => Direction::Uplink,
                    "down" => Direction::Downlink,
                    other => return Err(format!("unknown direction '{other}'")),
                }
            }
            "--secs" => args.secs = value()?.parse().map_err(|e| format!("bad --secs: {e}"))?,
            "--seed" => args.seed = value()?.parse().map_err(|e| format!("bad --seed: {e}"))?,
            "--events" => args.events = Some(PathBuf::from(value()?)),
            "--ledger" => args.ledger = Some(PathBuf::from(value()?)),
            "--spans" => args.spans = true,
            "--audit" => args.audit = true,
            "--metrics" => args.metrics = Some(PathBuf::from(value()?)),
            "--metrics-csv" => args.metrics_csv = Some(PathBuf::from(value()?)),
            "--scenario" => args.scenario = Some(PathBuf::from(value()?)),
            "--threads" => {
                let n: usize = value()?
                    .parse()
                    .map_err(|e| format!("bad --threads: {e}"))?;
                if n == 0 {
                    return Err("--threads must be at least 1".into());
                }
                args.threads = Some(n);
            }
            "--csv" => args.csv = Some(PathBuf::from(value()?)),
            "--prof" => args.prof = Some(PathBuf::from(value()?)),
            "--trace-out" => args.trace_out = Some(PathBuf::from(value()?)),
            "--trace-cap" => {
                let n: usize = value()?
                    .parse()
                    .map_err(|e| format!("bad --trace-cap: {e}"))?;
                if n == 0 {
                    return Err("--trace-cap must be at least 1".into());
                }
                args.trace_cap = Some(n);
            }
            "--record" => args.record = Some(PathBuf::from(value()?)),
            "--fp" => args.fp = true,
            "--interval" => {
                let n: u64 = value()?
                    .parse()
                    .map_err(|e| format!("bad --interval: {e}"))?;
                if n == 0 {
                    return Err("--interval must be at least 1".into());
                }
                args.interval = Some(n);
            }
            "--inject" => args.inject = Some(value()?),
            "--window" => args.window = Some(value()?),
            // `run --json` is a bare flag; `sweep --json <path>`,
            // `tournament --json <path>` and `profile --json <path>`
            // take a path.
            "--json" if cmd == "sweep" || cmd == "tournament" || cmd == "profile" => {
                args.json_path = Some(PathBuf::from(value()?))
            }
            "--json" => args.json = true,
            other
                if !other.starts_with('-') && (cmd == "profile" || args.positionals.is_empty()) =>
            {
                args.positionals.push(other.to_string());
            }
            other => return Err(format!("unknown option '{other}'; try --help")),
        }
    }
    Ok((cmd, args))
}

fn cmd_run(a: &Args) -> Result<(), String> {
    let (cfg, labels) = match &a.scenario {
        Some(path) => {
            let doc = airtime::scenario::load(path).map_err(|e| e.to_string())?;
            if doc.table("sweep").is_some() {
                return Err(format!(
                    "{} declares a [sweep] section; use `airtime-cli sweep {}`",
                    path.display(),
                    path.display()
                ));
            }
            let spec = airtime::scenario::compile(&doc, &path.display().to_string())
                .map_err(|e| e.to_string())?;
            if spec.topo.is_some() {
                return run_topology_scenario(a, &spec);
            }
            (spec.cfg, spec.rate_labels)
        }
        None => {
            let mut cfg = scenarios::tcp_stations(&a.rates, a.direction, a.sched.clone());
            cfg.duration = SimDuration::from_secs(a.secs);
            cfg.warmup = SimDuration::from_secs((a.secs / 8).max(1));
            cfg.seed = a.seed;
            let labels = a.rates.iter().map(|r| r.to_string()).collect();
            (cfg, labels)
        }
    };

    let mut registry = (a.metrics.is_some() || a.metrics_csv.is_some()).then(MetricsRegistry::new);
    let mut ledger = None;
    let r = if let Some(path) = &a.record {
        // The flight recorder wants the whole observer lane to itself
        // (its stream is the debugging artifact); reports stay
        // byte-identical either way.
        if a.events.is_some() || a.ledger.is_some() {
            return Err("--record cannot be combined with --events or --ledger".into());
        }
        let mut rec = FlightRecorder::new();
        let r = run_instrumented(&cfg, &mut rec, registry.as_mut());
        std::fs::write(path, rec.to_jsonl())
            .map_err(|e| format!("writing {}: {e}", path.display()))?;
        if !a.json {
            println!(
                "flight recording written to {} ({} events, {} retained, fp {})\n",
                path.display(),
                rec.events(),
                rec.ring().count(),
                fp_hex(rec.fingerprint())
            );
        }
        r
    } else {
        match (&a.events, a.ledger.is_some()) {
            (Some(path), true) => {
                // Ledger + trace: tee the event stream into both.
                let jsonl = JsonlObserver::create(path)
                    .map_err(|e| format!("creating {}: {e}", path.display()))?;
                let mut tee = TeeObserver::new(AirtimeLedger::new(), jsonl);
                let r = run_instrumented(&cfg, &mut tee, registry.as_mut());
                tee.finish()
                    .map_err(|e| format!("writing {}: {e}", path.display()))?;
                ledger = Some(tee.a);
                r
            }
            (Some(path), false) => {
                let mut obs = JsonlObserver::create(path)
                    .map_err(|e| format!("creating {}: {e}", path.display()))?;
                let r = run_instrumented(&cfg, &mut obs, registry.as_mut());
                obs.finish()
                    .map_err(|e| format!("writing {}: {e}", path.display()))?;
                r
            }
            (None, true) => {
                let mut led = AirtimeLedger::new();
                let r = run_instrumented(&cfg, &mut led, registry.as_mut());
                ledger = Some(led);
                r
            }
            (None, false) => match registry.as_mut() {
                Some(reg) => run_instrumented(&cfg, &mut NullObserver, Some(reg)),
                None => run(&cfg),
            },
        }
    };
    if let (Some(path), Some(reg)) = (&a.metrics, &registry) {
        std::fs::write(path, reg.to_json() + "\n")
            .map_err(|e| format!("writing {}: {e}", path.display()))?;
    }
    if let (Some(path), Some(reg)) = (&a.metrics_csv, &registry) {
        std::fs::write(path, reg.series_to_csv())
            .map_err(|e| format!("writing {}: {e}", path.display()))?;
    }
    if let (Some(path), Some(led)) = (&a.ledger, &ledger) {
        std::fs::write(path, led.timeline_csv())
            .map_err(|e| format!("writing {}: {e}", path.display()))?;
        let audit = led.audit();
        // Cross-check the ledger's occupancy view against the report.
        let shares = led.occupancy_shares();
        let mut worst: f64 = 0.0;
        for node in &r.nodes {
            let id = (node.station + 1) as u64;
            let led_share = shares
                .iter()
                .find(|&&(s, _)| s == id)
                .map_or(0.0, |&(_, sh)| sh);
            worst = worst.max((led_share - node.occupancy_share).abs());
        }
        let agree = worst <= 1e-9;
        if !a.json {
            print!("{audit}");
            println!(
                "  occupancy agreement with report: {} (max |Δshare| {worst:.2e})",
                if agree { "PASS" } else { "FAIL" }
            );
            println!("  timeline written to {}\n", path.display());
        }
        if !audit.conserved {
            return Err("airtime conservation audit failed".into());
        }
        if !agree {
            return Err(format!(
                "ledger occupancy shares disagree with the report (max |Δshare| {worst:.2e})"
            ));
        }
    }

    if a.json {
        println!("{}", report_json(&cfg, &labels, &r));
        return Ok(());
    }
    println!(
        "{} stations, {} TCP, {} s simulated\n",
        cfg.stations.len(),
        direction_label(&cfg),
        cfg.duration.as_secs_f64()
    );
    println!("station  rate   goodput Mb/s  airtime  p50 lat ms");
    for (i, f) in r.flows.iter().enumerate() {
        println!(
            "{:>7}  {:>4}  {:>12.3}  {:>6.1}%  {:>10}",
            i + 1,
            labels[f.station],
            f.goodput_mbps,
            r.nodes[f.station].occupancy_share * 100.0,
            f.latency_p50_ms
                .map(|l| format!("{l:.1}"))
                .unwrap_or_else(|| "-".into()),
        );
    }
    println!(
        "\ntotal {:.3} Mb/s   utilization {:.0}%   MAC collisions {}   drops {}",
        r.total_goodput_mbps,
        r.utilization * 100.0,
        r.mac.collision_events,
        r.sched_drops
    );
    Ok(())
}

/// `run --scenario` on a file with `[[cells]]`: executes the multi-cell
/// topology on one timeline and prints per-cell results, the per-station
/// fold, and the handoff log. Per-cell airtime ledgers always run; a
/// failed conservation audit exits non-zero.
fn run_topology_scenario(a: &Args, spec: &airtime::scenario::ScenarioSpec) -> Result<(), String> {
    let topo = spec.topo.as_ref().expect("caller checked");
    for (flag, used) in [
        ("--events", a.events.is_some()),
        ("--metrics", a.metrics.is_some()),
        ("--metrics-csv", a.metrics_csv.is_some()),
    ] {
        if used {
            return Err(format!(
                "{flag} streams a single cell's events; it is not supported for \
                 multi-cell topology scenarios"
            ));
        }
    }
    // One span collector + ledger per cell, plus a flight-recorder
    // lane: full ring when `--record` asked for the artifact, pure
    // fingerprinting (capacity 0) otherwise.
    let mut obs: Vec<_> = (0..topo.cells.len())
        .map(|c| {
            let rec = if a.record.is_some() {
                FlightRecorder::new()
            } else {
                FlightRecorder::new().with_capacity(0)
            };
            TeeObserver::new(
                TeeObserver::new(SpanCollector::new(), AirtimeLedger::new()),
                rec.for_cell(c as u64),
            )
        })
        .collect();
    let tr = airtime::topo::run_topology(topo, &mut obs);
    let delays: Vec<_> = obs.iter().map(|o| o.a.a.summary()).collect();
    let audits: Vec<_> = obs.iter().map(|o| o.a.b.audit()).collect();
    if let Some(path) = &a.ledger {
        // One timeline file per radio cell: `<stem>.cell<i>[.ext]`.
        for (i, o) in obs.iter().enumerate() {
            let p = suffixed(path, &format!("cell{i}"));
            std::fs::write(&p, o.a.b.timeline_csv())
                .map_err(|e| format!("writing {}: {e}", p.display()))?;
        }
    }
    if let Some(path) = &a.record {
        // One recording per radio cell lane: `<stem>.cell<i>[.ext]`.
        for (i, o) in obs.iter().enumerate() {
            let p = suffixed(path, &format!("cell{i}"));
            std::fs::write(&p, o.b.to_jsonl())
                .map_err(|e| format!("writing {}: {e}", p.display()))?;
            if !a.json {
                println!(
                    "cell {i} flight recording written to {} ({} events, fp {})",
                    p.display(),
                    o.b.events(),
                    fp_hex(o.b.fingerprint())
                );
            }
        }
        if !a.json {
            println!();
        }
    }
    let mut agg = airtime::scenario::aggregate::aggregate_topology(
        0,
        Vec::new(),
        spec,
        &tr,
        &delays,
        &audits,
    );
    agg.fp = Some(fp_hex(airtime::scenario::combine_fps(
        obs.iter().map(|o| o.b.fingerprint()),
    )));
    let roam = agg.roam.as_ref().expect("topology aggregate");

    if a.json {
        let axes: [airtime::scenario::Axis; 0] = [];
        print!(
            "{}",
            airtime::scenario::emit::to_json(&spec.name, &axes, std::slice::from_ref(&agg))
        );
    } else {
        println!(
            "{} cells, {} stations, {} s simulated\n",
            topo.cells.len(),
            spec.cfg.stations.len(),
            topo.base.duration.as_secs_f64()
        );
        println!("cell  channel      at (ft)  goodput Mb/s  util %  audit");
        for (i, c) in topo.cells.iter().enumerate() {
            println!(
                "{:>4}  {:>7}  {:>11}  {:>12.3}  {:>6.1}  {}",
                i,
                c.channel,
                format!("({:.0},{:.0})", c.position.x_ft, c.position.y_ft),
                tr.cells[i].total_goodput_mbps,
                tr.cells[i].utilization * 100.0,
                if audits[i].conserved { "pass" } else { "FAIL" },
            );
        }
        println!("\nstation  rate   total Mb/s  handoffs  outage s");
        for (s, st) in agg.stations.iter().enumerate() {
            println!(
                "{:>7}  {:>4}  {:>11.3}  {:>8}  {:>8.1}",
                s + 1,
                st.rate,
                st.goodput_mbps,
                tr.roaming.handoff_count(s),
                tr.roaming.outage.get(s).map_or(0.0, |o| o.as_secs_f64()),
            );
        }
        if !tr.roaming.handoffs.is_empty() {
            println!("\nassociation transitions:");
            for h in &tr.roaming.handoffs {
                let cell =
                    |c: Option<usize>| c.map(|c| format!("cell {c}")).unwrap_or_else(|| "-".into());
                println!(
                    "  t={:>6.1}s  station {}: {} -> {}",
                    h.at.as_secs_f64(),
                    h.station + 1,
                    cell(h.from),
                    cell(h.to),
                );
            }
        }
        println!(
            "\ntotal {:.3} Mb/s across cells   handoffs {}   drops {}   outage {:.1} s",
            tr.total_goodput_mbps(),
            roam.handoffs,
            roam.drops,
            roam.outage_s
        );
    }
    if !roam.audits_pass {
        return Err(format!(
            "airtime conservation audit failed in at least one cell \
             (worst error {} ns)",
            roam.worst_audit_error_ns
        ));
    }
    Ok(())
}

/// `events.csv` + `cell1` -> `events.cell1.csv` (suffix appended when
/// there is no extension).
fn suffixed(path: &std::path::Path, tag: &str) -> PathBuf {
    let mut p = path.to_path_buf();
    match path.extension().and_then(|e| e.to_str()) {
        Some(ext) => {
            let stem = path.file_stem().and_then(|s| s.to_str()).unwrap_or("out");
            p.set_file_name(format!("{stem}.{tag}.{ext}"));
        }
        None => {
            let name = path.file_name().and_then(|s| s.to_str()).unwrap_or("out");
            p.set_file_name(format!("{name}.{tag}"));
        }
    }
    p
}

/// One word describing where the cell's flows point: `Uplink`,
/// `Downlink`, or `Mixed` when a scenario file declares both.
fn direction_label(cfg: &airtime::wlan::NetworkConfig) -> String {
    let mut dirs = cfg
        .stations
        .iter()
        .flat_map(|s| s.flows.iter())
        .map(|f| f.direction);
    match dirs.next() {
        None => "idle".into(),
        Some(first) => {
            if dirs.all(|d| d == first) {
                format!("{first:?}")
            } else {
                "Mixed".into()
            }
        }
    }
}

/// The run report as one JSON object (the `--json` output).
fn report_json(cfg: &airtime::wlan::NetworkConfig, labels: &[String], r: &Report) -> String {
    let mut flows = String::from("[");
    for (i, f) in r.flows.iter().enumerate() {
        if i > 0 {
            flows.push(',');
        }
        let mut o = Obj::new();
        o.u64("station", f.station as u64)
            .str("rate", &labels[f.station])
            .f64("goodput_mbps", f.goodput_mbps)
            .f64("occupancy_share", r.nodes[f.station].occupancy_share);
        match f.latency_p50_ms {
            Some(l) => o.f64("latency_p50_ms", l),
            None => o.raw("latency_p50_ms", "null"),
        };
        flows.push_str(&o.finish());
    }
    flows.push(']');
    let occupancy: Vec<f64> = r.nodes.iter().map(|n| n.occupancy_share).collect();
    let mut o = Obj::new();
    o.u64("seed", cfg.seed)
        .f64("secs", cfg.duration.as_secs_f64())
        .str("direction", &direction_label(cfg))
        .str("scheduler", &format!("{:?}", cfg.scheduler))
        .raw("flows", &flows)
        .raw("occupancy_shares", &array_f64(&occupancy))
        .f64("total_goodput_mbps", r.total_goodput_mbps)
        .f64("utilization", r.utilization)
        .u64("mac_collisions", r.mac.collision_events)
        .u64("mac_retries", r.mac.retries)
        .u64("sched_drops", r.sched_drops);
    o.finish()
}

fn cmd_sweep(a: &Args) -> Result<(), String> {
    let path = a
        .positionals
        .first()
        .ok_or("sweep needs a scenario file: airtime-cli sweep <file.toml>")?;
    let path = std::path::Path::new(path);
    let file = path.display().to_string();
    let doc = airtime::scenario::load(path).map_err(|e| e.to_string())?;
    let threads = a.threads.unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    });
    let outcome = airtime::scenario::run_sweep(&doc, &file, threads).map_err(|e| e.to_string())?;

    let mut out = airtime::bench::Output::new(
        &format!("sweep '{}' — {} cells", outcome.name, outcome.cells.len()),
        None,
    );
    print_sweep_table(&mut out, &outcome);
    out.note(&format!(
        "{} worker thread(s); jobs per thread: {:?}",
        outcome.stats.threads_used(),
        outcome.stats.per_thread_jobs
    ));

    if let Some(p) = &a.json_path {
        let doc = airtime::scenario::emit::to_json(&outcome.name, &outcome.axes, &outcome.cells);
        std::fs::write(p, doc).map_err(|e| format!("writing {}: {e}", p.display()))?;
        out.note(&format!("JSON matrix written to {}", p.display()));
    }
    if let Some(p) = &a.csv {
        let doc = airtime::scenario::emit::to_csv(&outcome.name, &outcome.axes, &outcome.cells);
        std::fs::write(p, doc).map_err(|e| format!("writing {}: {e}", p.display()))?;
        out.note(&format!("CSV matrix written to {}", p.display()));
    }

    let failed = outcome.failed_cells();
    if failed > 0 {
        out.note(&format!("{failed} cell(s) failed their baseline check"));
    }
    out.finish();
    if outcome.strict_failure {
        return Err(format!(
            "{failed} cell(s) failed the baseline check and the scenario sets [check] strict = true"
        ));
    }
    if outcome.audit_failure {
        return Err(
            "airtime conservation audit failed in at least one topology cell \
             (a non-conserved timeline is a simulator defect)"
                .into(),
        );
    }
    Ok(())
}

fn cmd_tournament(a: &Args) -> Result<(), String> {
    let path = a
        .positionals
        .first()
        .ok_or("tournament needs a scenario file: airtime-cli tournament <file.toml>")?;
    let path = std::path::Path::new(path);
    let file = path.display().to_string();
    let doc = airtime::scenario::load(path).map_err(|e| e.to_string())?;
    let threads = a.threads.unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    });
    let outcome =
        airtime::scenario::run_tournament(&doc, &file, threads).map_err(|e| e.to_string())?;

    let mut out = airtime::bench::Output::new(
        &format!(
            "tournament '{}' — {} families x {} mixes x {} direction(s)",
            outcome.name,
            outcome.families.len(),
            outcome.mixes.len(),
            outcome.directions.len()
        ),
        None,
    );
    let rows: Vec<Vec<String>> = outcome
        .rows
        .iter()
        .map(|r| {
            vec![
                r.index.to_string(),
                r.family.clone(),
                r.mix.clone(),
                r.direction.clone(),
                format!("{:.3}", r.total_mbps),
                format!("{:.1}", r.utilization * 100.0),
                format!("{:.3}", r.jain_throughput),
                format!("{:.3}", r.jain_airtime),
                r.check.label().to_string(),
                r.fp.clone(),
            ]
        })
        .collect();
    out.table(
        "",
        &[
            "job",
            "family",
            "mix",
            "dir",
            "total Mb/s",
            "util %",
            "Jain(thpt)",
            "Jain(time)",
            "check",
            "fp",
        ],
        &rows,
    );
    // Per-station breakdown: the airtime shares and queueing delays the
    // family comparison is actually about.
    let station_rows: Vec<Vec<String>> = outcome
        .rows
        .iter()
        .flat_map(|r| {
            r.stations.iter().map(|s| {
                vec![
                    r.index.to_string(),
                    r.family.clone(),
                    s.rate.clone(),
                    format!("{:.3}", s.goodput_mbps),
                    format!("{:.3}", s.airtime_share),
                    format!("{:.2}", s.delay_ms[0]),
                    format!("{:.2}", s.delay_ms[1]),
                    format!("{:.2}", s.delay_ms[2]),
                ]
            })
        })
        .collect();
    out.table(
        "per station",
        &[
            "job", "family", "rate", "Mb/s", "airtime", "q p50 ms", "q p95 ms", "q p99 ms",
        ],
        &station_rows,
    );
    out.note(&format!(
        "{} worker thread(s); jobs per thread: {:?}",
        outcome.stats.threads_used(),
        outcome.stats.per_thread_jobs
    ));

    if let Some(p) = &a.json_path {
        let doc = airtime::scenario::tournament::to_json(&outcome);
        std::fs::write(p, doc).map_err(|e| format!("writing {}: {e}", p.display()))?;
        out.note(&format!("JSON matrix written to {}", p.display()));
    }
    if let Some(p) = &a.csv {
        let doc = airtime::scenario::tournament::to_csv(&outcome);
        std::fs::write(p, doc).map_err(|e| format!("writing {}: {e}", p.display()))?;
        out.note(&format!("CSV matrix written to {}", p.display()));
    }

    let failed = outcome
        .rows
        .iter()
        .filter(|r| matches!(r.check, airtime::scenario::CheckOutcome::Fail(_)))
        .count();
    if failed > 0 {
        out.note(&format!("{failed} row(s) failed their baseline check"));
    }
    out.finish();
    if outcome.strict_failure {
        return Err(format!(
            "{failed} row(s) failed the baseline check and the scenario sets [check] strict = true"
        ));
    }
    Ok(())
}

/// The per-cell stdout table for `sweep`: one row per matrix cell.
/// Topology sweeps (any cell with roaming metrics) grow handoff /
/// drop / outage / audit columns plus per-radio-cell goodputs.
fn print_sweep_table(out: &mut airtime::bench::Output, outcome: &airtime::scenario::SweepOutcome) {
    let topo = outcome.cells.iter().any(|c| c.roam.is_some());
    let mut header: Vec<&str> = vec!["cell"];
    for ax in &outcome.axes {
        header.push(ax.name.as_str());
    }
    header.extend(["total Mb/s", "util %", "Jain(thpt)", "Jain(time)", "check"]);
    if topo {
        header.extend(["handoffs", "drops", "outage s", "audit", "cells Mb/s"]);
    }
    let rows: Vec<Vec<String>> = outcome
        .cells
        .iter()
        .map(|c| {
            let mut row = vec![c.index.to_string()];
            row.extend(c.coords.iter().map(|(_, v)| v.clone()));
            row.push(format!("{:.3}", c.total_mbps));
            row.push(format!("{:.1}", c.utilization * 100.0));
            row.push(format!("{:.3}", c.jain_throughput));
            row.push(format!("{:.3}", c.jain_airtime));
            row.push(c.check.label().to_string());
            if topo {
                match &c.roam {
                    Some(r) => {
                        row.push(r.handoffs.to_string());
                        row.push(r.drops.to_string());
                        row.push(format!("{:.1}", r.outage_s));
                        row.push(if r.audits_pass { "pass" } else { "FAIL" }.into());
                        row.push(
                            r.cell_mbps
                                .iter()
                                .map(|m| format!("{m:.2}"))
                                .collect::<Vec<_>>()
                                .join("/"),
                        );
                    }
                    None => row.extend(std::iter::repeat_n(String::new(), 5)),
                }
            }
            row
        })
        .collect();
    out.table("", &header, &rows);
}

fn cmd_inspect(a: &Args) -> Result<(), String> {
    if let Some(p) = &a.prof {
        let text =
            std::fs::read_to_string(p).map_err(|e| format!("reading {}: {e}", p.display()))?;
        let rendered =
            airtime::obs::render_perf_report(&text).map_err(|e| format!("{}: {e}", p.display()))?;
        print!("{rendered}");
        return Ok(());
    }
    let path = a
        .positionals
        .first()
        .ok_or("inspect needs a trace path: airtime-cli inspect <events.jsonl>")?;
    let p = std::path::Path::new(path);
    if a.fp {
        let text = std::fs::read_to_string(p).map_err(|e| format!("reading {path}: {e}"))?;
        let rec = Recording::parse(&text).map_err(|e| format!("{path}: {e}"))?;
        println!(
            "recording: {} events, fp {}, {} checkpoints (every {} events){}",
            rec.total_events,
            rec.fp,
            rec.checkpoints.len(),
            rec.interval,
            match rec.cell {
                Some(c) => format!(", cell {c} lane"),
                None => String::new(),
            }
        );
        println!("checkpoint     events            t(s)  fingerprint");
        for (i, cp) in rec.checkpoints.iter().enumerate() {
            println!(
                "{:>10}  {:>9}  {:>14.9}  {}",
                i,
                cp.events,
                cp.t.as_secs_f64(),
                fp_hex(cp.fp)
            );
        }
        return Ok(());
    }
    if a.spans || a.audit {
        if a.spans {
            let spans = SpanCollector::from_file(p).map_err(|e| format!("reading {path}: {e}"))?;
            print!("{spans}");
        }
        if a.audit {
            let ledger = AirtimeLedger::from_file(p).map_err(|e| format!("reading {path}: {e}"))?;
            let audit = ledger.audit();
            print!("{audit}");
            if !audit.conserved {
                return Err("airtime conservation audit failed".into());
            }
        }
        return Ok(());
    }
    let summary = airtime::obs::summarize_file(p).map_err(|e| format!("reading {path}: {e}"))?;
    print!("{summary}");
    Ok(())
}

/// `profile <file.toml>...` — times the event loop over each scenario
/// (cell or multi-cell topology) with a null observer, writes the
/// BENCH-schema perf report, and optionally exports a Chrome trace
/// from a second, untimed pass.
fn cmd_profile(a: &Args) -> Result<(), String> {
    if a.positionals.is_empty() {
        return Err(
            "profile needs at least one scenario file: airtime-cli profile <file.toml>...".into(),
        );
    }
    let mut trace = a
        .trace_out
        .as_ref()
        .map(|_| ChromeTrace::with_cap(a.trace_cap.unwrap_or(DEFAULT_TRACE_CAP)));
    // Cell lanes count up from 0; synthetic dispatch-summary lanes
    // count up from HOST_PID so they sort below the real cells.
    let mut next_pid: u64 = 0;
    let mut host_pid: u64 = HOST_PID;
    let mut scenario_objs: Vec<String> = Vec::new();
    for path in &a.positionals {
        let p = std::path::Path::new(path);
        let file = p.display().to_string();
        let doc = airtime::scenario::load(p).map_err(|e| e.to_string())?;
        let spec = airtime::scenario::compile(&doc, &file).map_err(|e| e.to_string())?;
        let obj = match &spec.topo {
            None => profile_cell(&spec, trace.as_mut(), &mut next_pid, &mut host_pid),
            Some(topo) => {
                profile_topology(&spec, topo, trace.as_mut(), &mut next_pid, &mut host_pid)
            }
        };
        scenario_objs.push(obj);
    }
    let report = Obj::new()
        .str("bench", "profile")
        .raw("scenarios", &format!("[{}]", scenario_objs.join(",")))
        .bool("pass", true)
        .finish();
    print!(
        "{}",
        airtime::obs::render_perf_report(&report).expect("report was built to schema")
    );
    let json_path = a
        .json_path
        .clone()
        .unwrap_or_else(|| PathBuf::from("profile.report.json"));
    std::fs::write(&json_path, report + "\n")
        .map_err(|e| format!("writing {}: {e}", json_path.display()))?;
    println!("\nperf report written to {}", json_path.display());
    if let (Some(path), Some(t)) = (&a.trace_out, &trace) {
        t.write_to(path)
            .map_err(|e| format!("writing {}: {e}", path.display()))?;
        println!(
            "Chrome trace written to {} ({} events, {} dropped) — open in \
             chrome://tracing or ui.perfetto.dev",
            path.display(),
            t.len(),
            t.dropped()
        );
    }
    Ok(())
}

/// Joins dist rows (`dist_json`) into the report's JSON array.
fn dist_array<'a>(entries: impl Iterator<Item = (&'a str, &'a airtime::sim::NsHist)>) -> String {
    let rows: Vec<String> = entries.map(|(l, h)| dist_json(l, h)).collect();
    format!("[{}]", rows.join(","))
}

/// Times one single-cell scenario and returns its report object. The
/// timing pass runs with a [`NullObserver`] so observation cost never
/// lands in the numbers; the trace pass (if any) reruns the scenario
/// with a [`ChromeTraceObserver`].
fn profile_cell(
    spec: &airtime::scenario::ScenarioSpec,
    trace: Option<&mut ChromeTrace>,
    next_pid: &mut u64,
    host_pid: &mut u64,
) -> String {
    let cfg = &spec.cfg;
    let mut reg = MetricsRegistry::new();
    set_alloc_counting(true);
    let before = alloc_stats();
    let t0 = std::time::Instant::now();
    let (_report, prof) = run_profiled(cfg, &mut NullObserver, &mut reg);
    let wall = t0.elapsed().as_secs_f64();
    let allocs = alloc_stats().since(before);
    set_alloc_counting(false);
    if let Some(sink) = trace {
        let pid = *next_pid;
        *next_pid += 1;
        let mut obs = ChromeTraceObserver::for_cell(pid, &spec.name);
        let _ = run_instrumented(cfg, &mut obs, None);
        obs.drain_into(sink);
        let hp = *host_pid;
        *host_pid += 1;
        sink.dispatch_summary(
            hp,
            &format!("{} · dispatch", spec.name),
            &prof.profiler.dists(),
        );
    }
    Obj::new()
        .str("scenario", &spec.name)
        .str("kind", "cell")
        .f64("wall_s", wall)
        .f64("sim_s", cfg.duration.as_secs_f64())
        .u64("events", prof.events)
        .f64("events_per_sec", prof.events as f64 / wall.max(1e-9))
        .u64("queue_high_water", prof.queue_high_water)
        .u64("allocs", allocs.allocs)
        .u64("alloc_bytes", allocs.bytes)
        .raw(
            "labels",
            &dist_array(prof.profiler.dists().iter().map(|(l, h)| (*l, h))),
        )
        .finish()
}

/// Times one multi-cell topology scenario and returns its report
/// object, including per-cell lane stats and driver phases.
fn profile_topology(
    spec: &airtime::scenario::ScenarioSpec,
    topo: &airtime::topo::TopologyConfig,
    trace: Option<&mut ChromeTrace>,
    next_pid: &mut u64,
    host_pid: &mut u64,
) -> String {
    let n = topo.cells.len();
    let mut null_obs: Vec<NullObserver> = (0..n).map(|_| NullObserver).collect();
    set_alloc_counting(true);
    let before = alloc_stats();
    let (_report, tp) = run_topology_profiled(topo, &mut null_obs);
    let allocs = alloc_stats().since(before);
    set_alloc_counting(false);
    if let Some(sink) = trace {
        let mut obs: Vec<ChromeTraceObserver> = (0..n)
            .map(|i| {
                ChromeTraceObserver::for_cell(
                    *next_pid + i as u64,
                    &format!("{} · cell {i}", spec.name),
                )
            })
            .collect();
        *next_pid += n as u64;
        let _ = run_topology(topo, &mut obs);
        for o in obs {
            o.drain_into(sink);
        }
        let hp = *host_pid;
        *host_pid += 1;
        sink.dispatch_summary(hp, &format!("{} · dispatch", spec.name), &tp.labels);
    }
    let cells: Vec<String> = tp
        .cells
        .iter()
        .enumerate()
        .map(|(i, c)| {
            Obj::new()
                .u64("cell", i as u64)
                .u64("events", c.events)
                .u64("queue_high_water", c.queue_high_water)
                .f64("total_us", c.dispatch.total_ns() as f64 / 1000.0)
                .u64("p50_ns", c.dispatch.quantile_ns(0.50).unwrap_or(0))
                .u64("p95_ns", c.dispatch.quantile_ns(0.95).unwrap_or(0))
                .u64("p99_ns", c.dispatch.quantile_ns(0.99).unwrap_or(0))
                .u64("max_ns", c.dispatch.max_ns().unwrap_or(0))
                .finish()
        })
        .collect();
    Obj::new()
        .str("scenario", &spec.name)
        .str("kind", "topology")
        .f64("wall_s", tp.wall_s)
        .f64("sim_s", topo.base.duration.as_secs_f64())
        .u64("events", tp.events)
        .f64("events_per_sec", tp.events as f64 / tp.wall_s.max(1e-9))
        .u64(
            "queue_high_water",
            tp.cells
                .iter()
                .map(|c| c.queue_high_water)
                .max()
                .unwrap_or(0),
        )
        .u64("allocs", allocs.allocs)
        .u64("alloc_bytes", allocs.bytes)
        .raw(
            "labels",
            &dist_array(tp.labels.iter().map(|(l, h)| (*l, h))),
        )
        .raw(
            "phases",
            &dist_array(tp.phases.iter().map(|(l, h)| (l.as_str(), h))),
        )
        .raw("cells", &format!("[{}]", cells.join(",")))
        .finish()
}

/// `verify-determinism <file.toml>` — the first-divergence debugger.
/// Exit 0: every backend × tick-mode combo (and both sweep thread
/// counts) produced identical fingerprint streams. Exit 1: at least
/// one diverged; the exact first divergent event is printed.
fn cmd_verify_determinism(a: &Args) -> Result<(), String> {
    let path = a.positionals.first().ok_or(
        "verify-determinism needs a scenario file: airtime-cli verify-determinism <file.toml>",
    )?;
    let p = std::path::Path::new(path);
    let file = p.display().to_string();
    let doc = airtime::scenario::load(p).map_err(|e| e.to_string())?;
    let spec = airtime::scenario::compile(&doc, &file).map_err(|e| e.to_string())?;
    let mut opts = airtime::scenario::VerifyOptions::default();
    if let Some(n) = a.interval {
        opts.interval = n;
    }
    if let Some(n) = a.threads {
        opts.threads = n;
    }
    if let Some(inj) = &a.inject {
        let (combo, idx) = inj
            .rsplit_once(':')
            .ok_or("--inject wants <combo>:<event index>, e.g. wheel/coalesced:1000")?;
        let idx: u64 = idx
            .parse()
            .map_err(|e| format!("bad --inject index: {e}"))?;
        if !airtime::scenario::verify::COMBOS
            .iter()
            .any(|c| c.0 == combo)
        {
            return Err(format!("--inject: unknown combo '{combo}'"));
        }
        opts.inject = Some((combo.to_string(), idx));
    }
    let outcome = airtime::scenario::verify_determinism(&spec, Some(&doc), &file, &opts)
        .map_err(|e| e.to_string())?;
    println!(
        "verify-determinism '{}': {} vs {} ({} events, reference fp {})",
        outcome.name,
        outcome.combos[0],
        outcome.combos[1..].join(", "),
        outcome.events,
        outcome.fp
    );
    if outcome.swept {
        println!(
            "sweep matrix compared at 1 vs {} threads",
            opts.threads.max(2)
        );
    }
    if outcome.passed() {
        println!("PASS — all combos produced identical causal streams");
        return Ok(());
    }
    for d in &outcome.divergences {
        print!("{}", d.render());
    }
    for (cell, f1, fn_) in &outcome.sweep_mismatches {
        println!("sweep cell {cell}: fp {f1} at 1 thread vs {fn_} at N threads");
    }
    Err("determinism verification failed".into())
}

/// `replay <recording>` — pretty-prints a flight recording written by
/// `run --record` as a causal event log.
fn cmd_replay(a: &Args) -> Result<(), String> {
    let path = a
        .positionals
        .first()
        .ok_or("replay needs a recording: airtime-cli replay <recording.jsonl>")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let rec = Recording::parse(&text).map_err(|e| format!("{path}: {e}"))?;
    let (start, end) = match &a.window {
        None => (None, None),
        Some(w) => {
            let (a_s, b_s) = w
                .split_once("..")
                .ok_or("--window wants <start>..<end> (stream indices)")?;
            let parse = |s: &str| -> Result<Option<u64>, String> {
                if s.is_empty() {
                    Ok(None)
                } else {
                    s.parse()
                        .map(Some)
                        .map_err(|e| format!("bad --window: {e}"))
                }
            };
            (parse(a_s)?, parse(b_s)?)
        }
    };
    print!("{}", rec.render_window(start, end));
    Ok(())
}

fn cmd_predict(a: &Args) {
    let specs: Vec<NodeSpec> = a
        .rates
        .iter()
        .map(|r| {
            let g = gamma_measured(*r).unwrap_or_else(|| {
                airtime::model::gamma_tcp_model(
                    &airtime::phy::Phy80211b::default(),
                    *r,
                    1500,
                    1460,
                    40,
                    a.rates.len().max(2),
                )
            });
            NodeSpec::with_gamma(g)
        })
        .collect();
    let rf = rf_allocation(&specs);
    let tf = tf_allocation(&specs);
    println!("analytic predictions (Eq 6 vs Eq 12), TCP, 1500 B packets\n");
    println!("station  rate   RF Mb/s  RF time   TF Mb/s  TF time");
    for i in 0..specs.len() {
        println!(
            "{:>7}  {:>4}  {:>7.3}  {:>6.1}%  {:>8.3}  {:>6.1}%",
            i + 1,
            a.rates[i].to_string(),
            rf.throughput[i],
            rf.occupancy[i] * 100.0,
            tf.throughput[i],
            tf.occupancy[i] * 100.0,
        );
    }
    println!(
        "\ntotals: RF {:.3} Mb/s, TF {:.3} Mb/s ({:+.0}%)",
        rf.total,
        tf.total,
        (tf.total / rf.total - 1.0) * 100.0
    );
}

fn main() {
    let mut argv = std::env::args();
    let _ = argv.next(); // program name
    match parse_args(argv) {
        Ok((cmd, args)) => {
            let result = match cmd.as_str() {
                "run" => cmd_run(&args),
                "sweep" => cmd_sweep(&args),
                "tournament" => cmd_tournament(&args),
                "inspect" => cmd_inspect(&args),
                "profile" => cmd_profile(&args),
                "verify-determinism" => cmd_verify_determinism(&args),
                "replay" => cmd_replay(&args),
                "predict" => {
                    cmd_predict(&args);
                    Ok(())
                }
                other => {
                    eprintln!("unknown command '{other}'\n{HELP}");
                    std::process::exit(2);
                }
            };
            if let Err(msg) = result {
                eprintln!("error: {msg}");
                std::process::exit(1);
            }
        }
        Err(msg) => {
            if msg == HELP {
                println!("{HELP}");
            } else {
                eprintln!("error: {msg}");
                std::process::exit(2);
            }
        }
    }
}
