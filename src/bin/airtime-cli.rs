//! `airtime-cli` — run custom multi-rate WLAN experiments from the
//! command line.
//!
//! ```text
//! airtime-cli run --rates 11,1 --sched tbr --direction up --secs 20
//! airtime-cli predict --rates 11,2,1
//! airtime-cli --help
//! ```
//!
//! (The per-paper tables and figures have dedicated binaries in
//! `airtime-bench`; this tool is for ad-hoc configurations.)

use airtime::model::{gamma_measured, rf_allocation, tf_allocation, NodeSpec};
use airtime::phy::DataRate;
use airtime::sim::SimDuration;
use airtime::wlan::{run, scenarios, Direction, SchedulerKind};

const HELP: &str = "airtime-cli — multi-rate WLAN fairness experiments

USAGE:
    airtime-cli run [OPTIONS]      simulate a cell and print the report
    airtime-cli predict [OPTIONS]  analytic RF/TF predictions (Eqs 6/12)

OPTIONS (run):
    --rates <list>      comma-separated Mbit/s per station from
                        {1,2,5.5,11,6,9,12,18,24,36,48,54}   [default: 11,1]
    --sched <name>      fifo | rr | drr | tbr | txop          [default: tbr]
    --direction <dir>   up | down                             [default: up]
    --secs <n>          simulated seconds                     [default: 20]
    --seed <n>          RNG seed                              [default: 1]

OPTIONS (predict):
    --rates <list>      as above
";

fn parse_rate(tok: &str) -> Result<DataRate, String> {
    Ok(match tok {
        "1" => DataRate::B1,
        "2" => DataRate::B2,
        "5.5" => DataRate::B5_5,
        "11" => DataRate::B11,
        "6" => DataRate::G6,
        "9" => DataRate::G9,
        "12" => DataRate::G12,
        "18" => DataRate::G18,
        "24" => DataRate::G24,
        "36" => DataRate::G36,
        "48" => DataRate::G48,
        "54" => DataRate::G54,
        other => return Err(format!("unknown rate '{other}'")),
    })
}

fn parse_rates(s: &str) -> Result<Vec<DataRate>, String> {
    let rates: Result<Vec<_>, _> = s.split(',').map(|t| parse_rate(t.trim())).collect();
    let rates = rates?;
    if rates.is_empty() {
        return Err("need at least one rate".into());
    }
    Ok(rates)
}

struct Args {
    rates: Vec<DataRate>,
    sched: SchedulerKind,
    direction: Direction,
    secs: u64,
    seed: u64,
}

fn parse_args(mut argv: std::env::Args) -> Result<(String, Args), String> {
    let cmd = argv.next().ok_or("missing command; try --help")?;
    if cmd == "--help" || cmd == "-h" || cmd == "help" {
        return Err(HELP.to_string());
    }
    let mut args = Args {
        rates: vec![DataRate::B11, DataRate::B1],
        sched: SchedulerKind::tbr(),
        direction: Direction::Uplink,
        secs: 20,
        seed: 1,
    };
    while let Some(flag) = argv.next() {
        let mut value = || argv.next().ok_or(format!("{flag} needs a value"));
        match flag.as_str() {
            "--rates" => args.rates = parse_rates(&value()?)?,
            "--sched" => {
                args.sched = match value()?.as_str() {
                    "fifo" => SchedulerKind::Fifo,
                    "rr" => SchedulerKind::RoundRobin,
                    "drr" => SchedulerKind::Drr,
                    "tbr" => SchedulerKind::tbr(),
                    "txop" => SchedulerKind::txop(),
                    other => return Err(format!("unknown scheduler '{other}'")),
                }
            }
            "--direction" => {
                args.direction = match value()?.as_str() {
                    "up" => Direction::Uplink,
                    "down" => Direction::Downlink,
                    other => return Err(format!("unknown direction '{other}'")),
                }
            }
            "--secs" => args.secs = value()?.parse().map_err(|e| format!("bad --secs: {e}"))?,
            "--seed" => args.seed = value()?.parse().map_err(|e| format!("bad --seed: {e}"))?,
            other => return Err(format!("unknown option '{other}'; try --help")),
        }
    }
    Ok((cmd, args))
}

fn cmd_run(a: &Args) {
    let mut cfg = scenarios::tcp_stations(&a.rates, a.direction, a.sched.clone());
    cfg.duration = SimDuration::from_secs(a.secs);
    cfg.warmup = SimDuration::from_secs((a.secs / 8).max(1));
    cfg.seed = a.seed;
    let r = run(&cfg);
    println!(
        "{} stations, {:?} TCP, {:?} s simulated\n",
        a.rates.len(),
        a.direction,
        a.secs
    );
    println!("station  rate   goodput Mb/s  airtime  p50 lat ms");
    for (i, f) in r.flows.iter().enumerate() {
        println!(
            "{:>7}  {:>4}  {:>12.3}  {:>6.1}%  {:>10}",
            i + 1,
            a.rates[f.station].to_string(),
            f.goodput_mbps,
            r.nodes[f.station].occupancy_share * 100.0,
            f.latency_p50_ms
                .map(|l| format!("{l:.1}"))
                .unwrap_or_else(|| "-".into()),
        );
    }
    println!(
        "\ntotal {:.3} Mb/s   utilization {:.0}%   MAC collisions {}   drops {}",
        r.total_goodput_mbps,
        r.utilization * 100.0,
        r.mac.collision_events,
        r.sched_drops
    );
}

fn cmd_predict(a: &Args) {
    let specs: Vec<NodeSpec> = a
        .rates
        .iter()
        .map(|r| {
            let g = gamma_measured(*r).unwrap_or_else(|| {
                airtime::model::gamma_tcp_model(
                    &airtime::phy::Phy80211b::default(),
                    *r,
                    1500,
                    1460,
                    40,
                    a.rates.len().max(2),
                )
            });
            NodeSpec::with_gamma(g)
        })
        .collect();
    let rf = rf_allocation(&specs);
    let tf = tf_allocation(&specs);
    println!("analytic predictions (Eq 6 vs Eq 12), TCP, 1500 B packets\n");
    println!("station  rate   RF Mb/s  RF time   TF Mb/s  TF time");
    for i in 0..specs.len() {
        println!(
            "{:>7}  {:>4}  {:>7.3}  {:>6.1}%  {:>8.3}  {:>6.1}%",
            i + 1,
            a.rates[i].to_string(),
            rf.throughput[i],
            rf.occupancy[i] * 100.0,
            tf.throughput[i],
            tf.occupancy[i] * 100.0,
        );
    }
    println!(
        "\ntotals: RF {:.3} Mb/s, TF {:.3} Mb/s ({:+.0}%)",
        rf.total,
        tf.total,
        (tf.total / rf.total - 1.0) * 100.0
    );
}

fn main() {
    let mut argv = std::env::args();
    let _ = argv.next(); // program name
    match parse_args(argv) {
        Ok((cmd, args)) => match cmd.as_str() {
            "run" => cmd_run(&args),
            "predict" => cmd_predict(&args),
            other => {
                eprintln!("unknown command '{other}'\n{HELP}");
                std::process::exit(2);
            }
        },
        Err(msg) => {
            if msg == HELP {
                println!("{HELP}");
            } else {
                eprintln!("error: {msg}");
                std::process::exit(2);
            }
        }
    }
}
