//! # Airtime — time-based fairness for multi-rate WLANs
//!
//! A from-scratch Rust reproduction of *Tan & Guttag, "Time-based
//! Fairness Improves Performance in Multi-rate WLANs"* (USENIX ATC
//! 2004): the **TBR** (Time-based Regulator) airtime scheduler, the
//! analytic fairness framework of the paper's §2, and the complete
//! 802.11b/g testbed it was evaluated on — rebuilt as a deterministic
//! discrete-event simulator.
//!
//! This crate is an umbrella that re-exports the workspace members:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`sim`] | `airtime-sim` | event queue, simulated time, RNG, statistics |
//! | [`phy`] | `airtime-phy` | 802.11b/g rates, frame airtime math, path loss, BER, ARF/AARF |
//! | [`mac`] | `airtime-mac` | DCF CSMA/CA, collisions, retries, airtime accounting |
//! | [`net`] | `airtime-net` | ack-clocked TCP Reno/NewReno, UDP, rate limiting |
//! | [`core`] | `airtime-core` | **TBR**, FIFO/RR/DRR baselines, fairness metrics |
//! | [`sched`] | `airtime-sched` | the pluggable `Scheduler` trait, family registry, PF and max-min |
//! | [`model`] | `airtime-model` | Equations 4–13, γ models, Bianchi, task model |
//! | [`trace`] | `airtime-trace` | trace synthesis + Figure 1/5 analyses |
//! | [`wlan`] | `airtime-wlan` | the integrated experiment engine and scenarios |
//! | [`obs`] | `airtime-obs` | structured event tracing, metrics registry, JSONL/CSV tools |
//! | [`topo`] | `airtime-topo` | multi-cell topologies: AP placement, mobility, association/handoff |
//! | [`scenario`] | `airtime-scenario` | declarative scenario files, sweeps, parallel execution |
//! | [`bench`] | `airtime-bench` | paper table/figure binaries and their shared output sink |
//!
//! # Quickstart
//!
//! ```
//! use airtime::wlan::{run, scenarios, SchedulerKind};
//! use airtime::phy::DataRate;
//! use airtime::sim::SimDuration;
//!
//! // Two uploaders, 11 vs 1 Mbit/s, on a stock AP — the multi-rate
//! // anomaly — then the same cell with TBR.
//! let mut normal = scenarios::uploaders(&[DataRate::B11, DataRate::B1], SchedulerKind::Fifo);
//! normal.duration = SimDuration::from_secs(10);
//! let mut fair = normal.clone();
//! fair.scheduler = SchedulerKind::tbr();
//!
//! let before = run(&normal);
//! let after = run(&fair);
//! assert!(after.total_goodput_mbps > 1.5 * before.total_goodput_mbps);
//! ```

pub use airtime_bench as bench;
pub use airtime_core as core;
pub use airtime_mac as mac;
pub use airtime_model as model;
pub use airtime_net as net;
pub use airtime_obs as obs;
pub use airtime_phy as phy;
pub use airtime_scenario as scenario;
pub use airtime_sched as sched;
pub use airtime_sim as sim;
pub use airtime_topo as topo;
pub use airtime_trace as trace;
pub use airtime_wlan as wlan;
